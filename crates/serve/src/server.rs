//! The plan server: JSON-line protocol over stdin/stdout or TCP, executed by
//! one shared scheduling core.
//!
//! Protocol: one [`ServerCommand`] per input line — bare (legacy, protocol
//! v0) or wrapped in a v1 [`qsync_api::RequestEnvelope`] — and one
//! [`ServerReply`] per output line, rendered in the form the command arrived
//! in ([`qsync_api::parse_line`] / [`qsync_api::render_reply`]). Plan
//! requests are submitted to a [`Scheduler`] and executed by a pool of
//! planner threads; replies stream back **as they complete** — callers
//! correlate by the echoed `id`, not by line order. Scheduling honors the
//! request's optional `priority`, `client_id`, `deadline_ms` and `weight`
//! fields (see [`crate::request::PlanRequest`]); a request without a
//! `client_id` is fair-queued under its **connection identity**, so one
//! flooding connection cannot starve the others.
//!
//! There is exactly **one** scheduler, one [`PlanEngine`] (and thus one
//! delta coalescer) and one worker pool per server, shared by every
//! connection ([`ServeCore`]): DRR fairness, delta quiescing and the plan
//! cache are all global. The blocking JSONL path
//! ([`PlanServer::serve_lines`]) is a thin adapter over that core; the TCP
//! path multiplexes all connections onto an epoll reactor
//! ([`crate::transport`]).
//!
//! Elasticity deltas are barriers: a delta waits for every plan submitted
//! (on any connection) before it, then applies — coalescing with concurrent
//! deltas — and fans its warm re-plans out through the scheduler's **batch**
//! class. Deltas run on dedicated executor threads so the connection that
//! submitted one keeps streaming; in particular a `Stats` read taken
//! mid-quiesce answers immediately from counters instead of blocking behind
//! the barrier. `Cancel` removes a still-queued plan request submitted **on
//! the same connection** (a successfully cancelled plan produces no `Plan`
//! reply; the `Cancelled` confirmation is its reply); plans queued by other
//! connections are out of reach and report `cancelled: false`.
//!
//! Connections that [`Subscribe`](ServerCommand::Subscribe) receive the
//! server's **event stream**: each delta wave broadcasts
//! [`ServerEvent::CacheInvalidated`] (what was evicted), one
//! [`ServerEvent::Replanned`] per warm re-plan, then
//! [`ServerEvent::DeltaApplied`] per composed delta — so a watching client
//! observes invalidate → re-plan for deltas *other* clients submit, without
//! polling `Stats`.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qsync_api::{
    render_reply, ApiError, ErrorCode, PlanPayload, ServerEvent, SubscriberStats, WireProto,
    MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION,
};
use qsync_clock::{Clock, SystemClock};
use qsync_obs::{CounterValue, GaugeValue, MetricsSnapshot};
pub use qsync_api::{ServerCommand, ServerReply};

use qsync_sched::{Dispatch, JobMeta, Priority, SchedConfig, Scheduler, SubmitError};

use crate::elastic::DeltaRequest;
use crate::engine::{PlanEngine, ReplanChain};
use crate::persist::{self, StoreConfig};
use crate::request::{PlanOutcome, PlanRequest, PlanResponse};
use crate::sim::SimOp;
use crate::transport::{Outbox, TransportConfig};

/// Software identifier advertised in `Hello` replies.
const SERVER_IDENT: &str = concat!("qsync-serve/", env!("CARGO_PKG_VERSION"));

/// One scheduler job of the serving layer.
enum ServeJob {
    /// A client plan request; the reply is routed back to the submitting
    /// connection in the wire form the request arrived in.
    Plan {
        request: PlanRequest,
        conn: Arc<ConnState>,
        wire: WireProto,
    },
    /// One re-plan chain of a delta wave; the result is sent back to the
    /// wave leader.
    Replan {
        index: usize,
        chain: Box<ReplanChain>,
        tx: mpsc::Sender<(usize, PlanResponse)>,
    },
}

/// Where a connection's replies go.
pub(crate) enum Sink {
    /// The blocking-adapter path: serialized replies flow through a channel
    /// to a dedicated writer thread.
    Line(mpsc::Sender<String>),
    /// The reactor path: bytes are buffered per connection and flushed by the
    /// event loop under write-readiness.
    Outbox(Arc<Outbox>),
}

/// Tuning of one token bucket: a steady refill rate plus a burst allowance.
///
/// The bucket is integer arithmetic in **token-millis** (1 command costs
/// 1000): refill is `rate_per_sec × elapsed_ms` token-millis, capped at
/// `burst × 1000` — deterministic for any clock, which is what lets the lab
/// replay overload scenarios byte-for-byte on a
/// [`ManualClock`](qsync_clock::ManualClock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucketConfig {
    /// Sustained admission rate, commands per second.
    pub rate_per_sec: u64,
    /// Burst allowance: commands admitted instantly from a full bucket.
    pub burst: u64,
}

/// Token-bucket overload protection, enforced per command at admission.
///
/// A shed command is **always answered** with a structured
/// [`ErrorCode::RateLimited`] error carrying the command's `id` (legacy v0
/// connections get the byte-compatible `Error` shape) — never a silent drop
/// — and it is safe to retry after a backoff: the command was rejected
/// before any state changed. The default has no limits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Per-connection bucket: bounds any single socket regardless of the
    /// identities it claims.
    pub per_conn: Option<TokenBucketConfig>,
    /// Per-client bucket, keyed by the request's `client_id` (falling back
    /// to the connection identity): bounds an identity that spreads itself
    /// across many connections.
    pub per_client: Option<TokenBucketConfig>,
}

impl RateLimitConfig {
    /// Whether any limit is configured (the hot path's fast-out).
    pub fn is_enabled(&self) -> bool {
        self.per_conn.is_some() || self.per_client.is_some()
    }
}

/// Deterministic integer token bucket (see [`TokenBucketConfig`]).
#[derive(Debug)]
struct TokenBucket {
    config: TokenBucketConfig,
    /// Current fill, in token-millis (1000 per admissible command).
    tokens_milli: u64,
    /// Clock-ms of the last refill.
    last_refill_ms: u64,
}

impl TokenBucket {
    /// A full bucket as of `now_ms`.
    fn new(config: TokenBucketConfig, now_ms: u64) -> Self {
        TokenBucket {
            config,
            tokens_milli: config.burst.saturating_mul(1000),
            last_refill_ms: now_ms,
        }
    }

    /// Refill for the elapsed time, then try to spend one command's worth of
    /// tokens. Returns whether the command is admitted.
    fn try_admit(&mut self, now_ms: u64) -> bool {
        let elapsed_ms = now_ms.saturating_sub(self.last_refill_ms);
        if elapsed_ms > 0 {
            // rate_per_sec tokens/s == rate_per_sec token-millis per ms.
            self.tokens_milli = self
                .tokens_milli
                .saturating_add(self.config.rate_per_sec.saturating_mul(elapsed_ms))
                .min(self.config.burst.saturating_mul(1000));
            self.last_refill_ms = now_ms;
        }
        if self.tokens_milli >= 1000 {
            self.tokens_milli -= 1000;
            true
        } else {
            false
        }
    }
}

/// Per-connection serving state, shared between the transport (which reads
/// commands) and the workers (which produce replies).
pub(crate) struct ConnState {
    /// Server-unique connection number; the default fair-queuing identity.
    id: u64,
    /// Commands accepted but not yet replied to (plans queued or running,
    /// deltas pending). The transport closes a connection only once this
    /// returns to zero.
    pending: Mutex<usize>,
    /// Signalled when `pending` returns to zero.
    idle: Condvar,
    /// This connection's token bucket, created lazily from the core's
    /// [`RateLimitConfig`] on the first admission check.
    rate: Mutex<Option<TokenBucket>>,
    sink: Sink,
}

impl ConnState {
    /// The fair-queuing identity of requests that don't name a `client_id`.
    pub(crate) fn identity(&self) -> String {
        format!("conn-{}", self.id)
    }

    /// The connection number.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Serialize and enqueue one reply line in the given wire form.
    pub(crate) fn send(&self, wire: WireProto, reply: &ServerReply) {
        let text = render_reply(wire, reply);
        match &self.sink {
            // A dropped receiver means the stream ended; nothing to tell.
            Sink::Line(tx) => drop(tx.send(text)),
            Sink::Outbox(outbox) => outbox.push_line(&text),
        }
    }

    /// Send a structured error in the given wire form (legacy connections
    /// get the byte-identical v0 `Error` line).
    pub(crate) fn send_err(&self, wire: WireProto, error: ApiError) {
        self.send(wire, &ServerReply::Fault(error));
    }

    /// Whether this connection can absorb another server-push event. Replies
    /// are owed and always buffer; events are droppable, so a subscriber
    /// whose un-flushed bytes exceed `cap` loses the event instead of
    /// growing the server's memory without bound (the stream's monotone
    /// `seq` exposes the gap to the client).
    fn event_capacity_ok(&self, cap: usize) -> bool {
        match &self.sink {
            // The blocking path's writer thread drains continuously into the
            // caller-owned writer; there is no measurable backlog to bound.
            Sink::Line(_) => true,
            Sink::Outbox(outbox) => outbox.len() <= cap,
        }
    }

    fn begin(&self) {
        *self.pending.lock().expect("pending counter poisoned") += 1;
    }

    fn end(&self) {
        let mut pending = self.pending.lock().expect("pending counter poisoned");
        *pending -= 1;
        let idle = *pending == 0;
        drop(pending);
        if idle {
            self.idle.notify_all();
            // Wake the reactor so it can re-check closability of an EOF'd
            // connection whose last reply just landed.
            if let Sink::Outbox(outbox) = &self.sink {
                outbox.mark_dirty();
            }
        }
    }

    /// Outstanding replies (commands accepted but not yet answered).
    pub(crate) fn pending_count(&self) -> usize {
        *self.pending.lock().expect("pending counter poisoned")
    }

    /// Block until every accepted command has been replied to.
    fn wait_idle(&self) {
        let mut pending = self.pending.lock().expect("pending counter poisoned");
        while *pending > 0 {
            pending = self.idle.wait(pending).expect("pending counter poisoned");
        }
    }
}

/// A delta handed off to the executor threads.
struct DeltaTask {
    request: DeltaRequest,
    conn: Arc<ConnState>,
    wire: WireProto,
}

/// One event-stream subscriber, with its slow-consumer accounting.
struct Subscriber {
    /// Wire form of the `Subscribe` command (events render in it).
    wire: WireProto,
    conn: Arc<ConnState>,
    /// Events dropped on this subscription because the connection's reply
    /// backlog was over the event cap. Reset by `Resync`.
    dropped: u64,
    /// Whether this subscriber opted into full adoption payloads
    /// (`Subscribe { adopt: true }`, the replica feed). Others receive the
    /// same events with the payload stripped.
    adopt: bool,
}

/// How many dedicated delta-executor threads a core runs. More than one lets
/// concurrent deltas coalesce into shared waves; deltas are rare events, so a
/// small fixed pool is plenty.
const DELTA_EXECUTORS: usize = 2;

/// The shared serving core: exactly one scheduler, engine (plan cache +
/// delta coalescer) and worker pool, shared by **every** connection of a
/// server — fairness, delta barriers and the event stream are global.
pub(crate) struct ServeCore {
    engine: Arc<PlanEngine>,
    sched: Scheduler<ServeJob>,
    /// (connection, plan-request id) → scheduler ticket, so `Cancel` can find
    /// the job — and only a job queued by the *same* connection. Workers
    /// remove their entry at dispatch; cancels remove it early.
    tickets: Mutex<HashMap<(u64, u64), u64>>,
    /// Delta hand-off to the executor threads; `None` once shutdown started.
    delta_tx: Mutex<Option<mpsc::Sender<DeltaTask>>>,
    /// Event-stream subscribers by connection id.
    subscribers: Mutex<HashMap<u64, Subscriber>>,
    /// Server-wide monotone event sequence.
    event_seq: AtomicU64,
    /// Un-flushed bytes beyond which a subscriber stops receiving events
    /// ([`TransportConfig::event_outbox_cap`]).
    event_outbox_cap: usize,
    next_conn: AtomicU64,
    /// `Some` only on an **inline** core (no threads): deltas queue here and
    /// are applied as one wave by [`pump`](Self::pump) instead of being
    /// handed to executor threads.
    inline_deltas: Mutex<Option<VecDeque<DeltaTask>>>,
    /// `Some` only on an inline core: the serial record of state-mutating
    /// operations in the exact order this core executed them — what the
    /// lab's cache-coherence oracle replays against a fresh engine.
    op_log: Mutex<Option<Vec<SimOp>>>,
    /// The persistent plan store, when configured: the default target of
    /// `Snapshot`/`Load` commands, and (with an interval) the periodic
    /// snapshot schedule. Set once right after start, before traffic.
    store: Mutex<Option<StoreConfig>>,
    /// Next periodic-snapshot deadline; `None` when no interval is set.
    snapshot_due: Mutex<Option<Instant>>,
    /// Token-bucket overload protection, enforced at the top of
    /// [`handle_command`](Self::handle_command). Set once right after start,
    /// before traffic; defaults to no limits.
    rate_limit: Mutex<RateLimitConfig>,
    /// Per-client token buckets (the `per_client` limit), keyed by the
    /// request's fair-share identity.
    client_buckets: Mutex<HashMap<String, TokenBucket>>,
}

/// Owner of a [`ServeCore`]'s threads; [`stop`](CoreHandle::stop) closes the
/// scheduler, drains and joins.
pub(crate) struct CoreHandle {
    pub(crate) core: Arc<ServeCore>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl CoreHandle {
    /// Stop accepting work, drain queued jobs and join every core thread.
    pub(crate) fn stop(self) {
        // New deltas now error out instead of queueing; executor threads
        // drain what's already queued, then exit on the closed channel.
        self.core.delta_tx.lock().expect("delta sender poisoned").take();
        // Workers drain the remaining queue, then exit.
        self.core.sched.close();
        for thread in self.threads {
            let _ = thread.join();
        }
        // Quiescent now: persist the final cache state, if configured.
        self.core.final_snapshot();
    }
}

impl ServeCore {
    /// Start a core: `workers` planner threads plus the delta executors.
    pub(crate) fn start(
        engine: Arc<PlanEngine>,
        workers: usize,
        config: SchedConfig,
        event_outbox_cap: usize,
        clock: Arc<dyn Clock>,
    ) -> CoreHandle {
        let (delta_tx, delta_rx) = mpsc::channel::<DeltaTask>();
        let core = Arc::new(ServeCore {
            engine,
            sched: Scheduler::with_clock(config, clock),
            tickets: Mutex::new(HashMap::new()),
            delta_tx: Mutex::new(Some(delta_tx)),
            subscribers: Mutex::new(HashMap::new()),
            event_seq: AtomicU64::new(0),
            event_outbox_cap,
            next_conn: AtomicU64::new(0),
            inline_deltas: Mutex::new(None),
            op_log: Mutex::new(None),
            store: Mutex::new(None),
            snapshot_due: Mutex::new(None),
            rate_limit: Mutex::new(RateLimitConfig::default()),
            client_buckets: Mutex::new(HashMap::new()),
        });
        let mut threads = Vec::with_capacity(workers + DELTA_EXECUTORS);
        for i in 0..workers.max(1) {
            let core = Arc::clone(&core);
            let builder = thread::Builder::new().name(format!("qsync-serve-worker-{i}"));
            threads.push(builder.spawn(move || core.worker_loop()).expect("spawn worker"));
        }
        let delta_rx = Arc::new(Mutex::new(delta_rx));
        for i in 0..DELTA_EXECUTORS {
            let core = Arc::clone(&core);
            let rx = Arc::clone(&delta_rx);
            let builder = thread::Builder::new().name(format!("qsync-serve-delta-{i}"));
            threads.push(builder.spawn(move || core.delta_loop(&rx)).expect("spawn delta executor"));
        }
        CoreHandle { core, threads }
    }

    /// Start a **threadless** core for deterministic simulation: no worker
    /// or delta-executor threads exist, so nothing runs concurrently with
    /// the caller. Queued plans and deltas execute only when the simulation
    /// driver calls [`pump`](Self::pump), single-threaded, in a fixed
    /// order; every state mutation is appended to the op log for the
    /// coherence oracle.
    pub(crate) fn start_inline(
        engine: Arc<PlanEngine>,
        config: SchedConfig,
        event_outbox_cap: usize,
        clock: Arc<dyn Clock>,
    ) -> Arc<ServeCore> {
        Arc::new(ServeCore {
            engine,
            sched: Scheduler::with_clock(config, clock),
            tickets: Mutex::new(HashMap::new()),
            // No executor threads: the Delta arm routes into `inline_deltas`
            // before it ever consults this sender.
            delta_tx: Mutex::new(None),
            subscribers: Mutex::new(HashMap::new()),
            event_seq: AtomicU64::new(0),
            event_outbox_cap,
            next_conn: AtomicU64::new(0),
            inline_deltas: Mutex::new(Some(VecDeque::new())),
            op_log: Mutex::new(Some(Vec::new())),
            store: Mutex::new(None),
            snapshot_due: Mutex::new(None),
            rate_limit: Mutex::new(RateLimitConfig::default()),
            client_buckets: Mutex::new(HashMap::new()),
        })
    }

    /// Install the token-bucket overload limits. Called once right after
    /// start, before any traffic (like [`set_store`](Self::set_store)).
    pub(crate) fn set_rate_limit(&self, config: RateLimitConfig) {
        *self.rate_limit.lock().expect("rate limit config poisoned") = config;
    }

    /// Admission control: refill-and-spend this command's token(s). Returns
    /// the structured shed error when a bucket is empty — per-connection
    /// checked first (that bucket bounds the socket regardless of claimed
    /// identities), then per-client. `Batch` wrappers pass free: their
    /// members are checked individually on recursion, so a flooded batch
    /// draws exactly one error per member, never a wholesale drop.
    fn check_rate_limit(&self, conn: &Arc<ConnState>, command: &ServerCommand) -> Option<ApiError> {
        if matches!(command, ServerCommand::Batch { .. }) {
            return None;
        }
        let config = *self.rate_limit.lock().expect("rate limit config poisoned");
        if !config.is_enabled() {
            return None;
        }
        let obs = self.engine.obs();
        let now = self.sched.clock().now_ms();
        if let Some(bucket_config) = config.per_conn {
            let mut bucket = conn.rate.lock().expect("conn rate bucket poisoned");
            let admitted = bucket
                .get_or_insert_with(|| TokenBucket::new(bucket_config, now))
                .try_admit(now);
            if !admitted {
                obs.rate_limited_conn.inc();
                return Some(
                    ApiError::new(
                        ErrorCode::RateLimited,
                        format!(
                            "connection rate limit exceeded ({}/s, burst {}); retry after backoff",
                            bucket_config.rate_per_sec, bucket_config.burst
                        ),
                    )
                    .with_id(command_id(command)),
                );
            }
        }
        if let Some(bucket_config) = config.per_client {
            let client = match command {
                ServerCommand::Plan(request) => {
                    request.client_id.clone().unwrap_or_else(|| conn.identity())
                }
                _ => conn.identity(),
            };
            let mut buckets = self.client_buckets.lock().expect("client buckets poisoned");
            let admitted = buckets
                .entry(client.clone())
                .or_insert_with(|| TokenBucket::new(bucket_config, now))
                .try_admit(now);
            if !admitted {
                obs.rate_limited_client.inc();
                return Some(
                    ApiError::new(
                        ErrorCode::RateLimited,
                        format!(
                            "client {client:?} rate limit exceeded ({}/s, burst {}); retry after backoff",
                            bucket_config.rate_per_sec, bucket_config.burst
                        ),
                    )
                    .with_id(command_id(command)),
                );
            }
        }
        None
    }

    /// Attach a persistent store: `Snapshot`/`Load` without an explicit
    /// `path` target it, and an interval schedules periodic snapshots on the
    /// delta executors. Called once right after start, before any traffic.
    pub(crate) fn set_store(&self, config: StoreConfig) {
        if let Some(interval) = config.snapshot_interval {
            *self.snapshot_due.lock().expect("snapshot deadline poisoned") =
                Some(Instant::now() + interval);
        }
        *self.store.lock().expect("store config poisoned") = Some(config);
    }

    /// Resolve a `Snapshot`/`Load` target: the explicit `path` operand wins,
    /// else the configured store path, else `None` (reported as an error).
    fn store_path(&self, explicit: Option<String>) -> Option<PathBuf> {
        explicit.map(PathBuf::from).or_else(|| {
            self.store
                .lock()
                .expect("store config poisoned")
                .as_ref()
                .map(|config| config.path.clone())
        })
    }

    /// Time until the next periodic snapshot is due (`None` disables the
    /// timeout — the delta executors then block on the channel as before).
    fn snapshot_timeout(&self) -> Option<Duration> {
        self.snapshot_due
            .lock()
            .expect("snapshot deadline poisoned")
            .map(|due| due.saturating_duration_since(Instant::now()))
    }

    /// Write a periodic snapshot if one is due, and re-arm the deadline.
    /// Racing executors are serialized by the deadline lock: the first one
    /// through re-arms it, the rest see a fresh deadline and return.
    fn maybe_periodic_snapshot(&self) {
        let Some((path, interval)) = self
            .store
            .lock()
            .expect("store config poisoned")
            .as_ref()
            .and_then(|c| c.snapshot_interval.map(|i| (c.path.clone(), i)))
        else {
            return;
        };
        {
            let mut due = self.snapshot_due.lock().expect("snapshot deadline poisoned");
            match *due {
                Some(deadline) if Instant::now() >= deadline => {
                    *due = Some(Instant::now() + interval);
                }
                _ => return,
            }
        }
        if let Err(error) = persist::snapshot_to_path(&self.engine, &path) {
            eprintln!("qsync-serve: periodic snapshot failed: {error}");
        }
    }

    /// Write a final snapshot at shutdown, if a store is configured. Runs
    /// after the worker and executor threads have joined, so the cache is
    /// quiescent.
    pub(crate) fn final_snapshot(&self) {
        let Some(path) =
            self.store.lock().expect("store config poisoned").as_ref().map(|c| c.path.clone())
        else {
            return;
        };
        if let Err(error) = persist::snapshot_to_path(&self.engine, &path) {
            eprintln!("qsync-serve: shutdown snapshot failed: {error}");
        }
    }

    /// Take the inline core's operation log (empty on a threaded core).
    pub(crate) fn take_op_log(&self) -> Vec<SimOp> {
        self.op_log
            .lock()
            .expect("op log poisoned")
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    fn record_op(&self, op: impl FnOnce() -> SimOp) {
        if let Some(log) = self.op_log.lock().expect("op log poisoned").as_mut() {
            log.push(op());
        }
    }

    /// Inline-core executor: run every queued job to completion on the
    /// calling thread. Plans drain first (preserving scheduler order), then
    /// all deltas queued so far apply as **one** coalesced wave — the same
    /// barrier semantics the threaded core gets from `quiesce()`, arrived at
    /// structurally: when the wave runs, the plan queue is already empty.
    /// Loops until neither queue has work; returns whether anything ran.
    pub(crate) fn pump(&self) -> bool {
        let mut progressed = false;
        loop {
            let mut ran = false;
            while let Some(job) = self.sched.try_next() {
                self.process_dispatch(job);
                ran = true;
            }
            let wave: Vec<DeltaTask> = self
                .inline_deltas
                .lock()
                .expect("inline delta queue poisoned")
                .as_mut()
                .map(|queue| queue.drain(..).collect())
                .unwrap_or_default();
            if !wave.is_empty() {
                self.apply_inline_delta_wave(wave);
                ran = true;
            }
            if !ran {
                return progressed;
            }
            progressed = true;
        }
    }

    /// Apply a batch of deltas as one coalesced wave on the calling thread
    /// (inline core only). Mirrors `delta_loop` + the coalescer's leader
    /// path: evictions are announced, re-plan chains run inline (never
    /// through `fan_out_replans`, which would block on a worker pool that
    /// does not exist here), each delta gets its own reply.
    fn apply_inline_delta_wave(&self, tasks: Vec<DeltaTask>) {
        self.record_op(|| {
            SimOp::DeltaWave(tasks.iter().map(|t| t.request.clone()).collect())
        });
        let requests: Vec<DeltaRequest> = tasks.iter().map(|t| t.request.clone()).collect();
        let wave_tid = requests.last().and_then(|r| r.trace_id).unwrap_or(0);
        let results = self.engine.apply_deltas_with(&requests, |chains| {
            self.broadcast(ServerEvent::CacheInvalidated {
                keys: chains.iter().map(|c| c.entry.response.key.clone()).collect(),
                trace_id: wave_tid,
            });
            let responses: Vec<PlanResponse> =
                chains.iter().map(|chain| self.engine.run_replan_chain(chain)).collect();
            for response in &responses {
                self.broadcast(ServerEvent::Replanned {
                    key: response.key.clone(),
                    outcome: response.outcome,
                    predicted_iteration_us: response.predicted_iteration_us,
                    trace_id: response.trace_id.unwrap_or(0),
                    adopt: self.adopt_payload(&response.key),
                });
            }
            responses
        });
        for (task, result) in tasks.into_iter().zip(results) {
            let reply = match result {
                Ok(outcome) => {
                    self.broadcast(ServerEvent::DeltaApplied {
                        id: outcome.id,
                        old_cluster_fingerprint: outcome.old_cluster_fingerprint.clone(),
                        new_cluster_fingerprint: outcome.new_cluster_fingerprint.clone(),
                        invalidated: outcome.invalidated,
                        replanned: outcome.replanned.len(),
                        trace_id: outcome.trace_id.unwrap_or(0),
                    });
                    ServerReply::Delta(outcome)
                }
                Err(error) => ServerReply::Fault(error),
            };
            task.conn.send(task.wire, &reply);
            task.conn.end();
        }
    }

    /// Register a new connection over the given reply sink.
    pub(crate) fn register_conn(&self, sink: Sink) -> Arc<ConnState> {
        Arc::new(ConnState {
            id: self.next_conn.fetch_add(1, Ordering::Relaxed),
            pending: Mutex::new(0),
            idle: Condvar::new(),
            rate: Mutex::new(None),
            sink,
        })
    }

    /// Drop a (closed) connection's server-side footprint: cancel every
    /// still-queued plan it submitted and end its event subscription.
    pub(crate) fn drop_conn(&self, conn_id: u64) {
        self.subscribers.lock().expect("subscriber map poisoned").remove(&conn_id);
        let orphaned: Vec<u64> = {
            let mut tickets = self.tickets.lock().expect("ticket map poisoned");
            let doomed: Vec<(u64, u64)> =
                tickets.keys().filter(|(conn, _)| *conn == conn_id).copied().collect();
            doomed.into_iter().filter_map(|key| tickets.remove(&key)).collect()
        };
        for ticket in orphaned {
            self.sched.cancel(ticket);
        }
    }

    /// The observability bundle shared with the engine (the transport
    /// records its instruments through this).
    pub(crate) fn obs(&self) -> &Arc<crate::metrics::ServeObs> {
        self.engine.obs()
    }

    /// Broadcast one event to every subscribed connection. A subscriber
    /// that has stopped reading (its reply buffer past the cap) is skipped:
    /// events are droppable server push, and an unbounded outbox would let
    /// one stalled watcher grow server memory with every delta wave. The
    /// dropped events appear to that client as a gap in the monotone `seq`;
    /// they are counted per subscriber (surfaced by `Stats`/`Metrics`) and
    /// recoverable through `Resync`.
    fn broadcast(&self, event: ServerEvent) {
        let obs = Arc::clone(self.engine.obs());
        let mut subscribers = self.subscribers.lock().expect("subscriber map poisoned");
        if subscribers.is_empty() {
            return;
        }
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        // Every subscriber sees the same event under the same seq, but only
        // those that opted in (`Subscribe { adopt: true }`) receive the full
        // adoption payload; the rest get the stripped form, rendered once.
        let mut stripped: Option<ServerEvent> = None;
        for sub in subscribers.values_mut() {
            if sub.conn.event_capacity_ok(self.event_outbox_cap) {
                obs.events_emitted.inc();
                let event = if sub.adopt {
                    event.clone()
                } else {
                    stripped.get_or_insert_with(|| event.without_adopt()).clone()
                };
                sub.conn.send(sub.wire, &ServerReply::Event { seq, event });
            } else {
                sub.dropped += 1;
                obs.events_dropped.inc();
            }
        }
    }

    /// Whether any current subscriber asked for adoption payloads. Building
    /// a payload clones the full cached plan, so broadcasters skip the work
    /// when nobody is following.
    fn wants_adopt(&self) -> bool {
        self.subscribers
            .lock()
            .expect("subscriber map poisoned")
            .values()
            .any(|sub| sub.adopt)
    }

    /// The adoption payload for a just-completed plan: the cached entry
    /// under the response's key, cloned — or `None` when no subscriber wants
    /// payloads (or the entry was already evicted again).
    fn adopt_payload(&self, key: &str) -> Option<PlanPayload> {
        if !self.wants_adopt() {
            return None;
        }
        let entry = self.engine.cache().peek(key)?;
        Some(PlanPayload {
            request: entry.request,
            response: entry.response,
            inference_pdag: entry.inference_pdag,
        })
    }

    /// Per-subscriber event accounting (for `Stats` and the metrics
    /// snapshot), in connection-id order.
    fn subscriber_stats(&self) -> Vec<SubscriberStats> {
        let subscribers = self.subscribers.lock().expect("subscriber map poisoned");
        let mut stats: Vec<SubscriberStats> = subscribers
            .iter()
            .map(|(&conn, sub)| SubscriberStats { conn, dropped: sub.dropped })
            .collect();
        stats.sort_by_key(|s| s.conn);
        stats
    }

    /// The full server metrics snapshot: the engine's registry + derived
    /// values, plus the scheduler and event-stream dynamics only the
    /// streaming core knows.
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.engine.metrics_snapshot();
        let sched = self.sched.stats();
        for (class, stats) in [
            ("interactive", sched.interactive),
            ("batch", sched.batch),
            ("background", sched.background),
        ] {
            snap.gauges.push(GaugeValue {
                name: format!("qsync_sched_queue_depth{{class=\"{class}\"}}"),
                value: stats.depth as i64,
            });
            for (kind, value) in [
                ("dispatched", stats.dispatched),
                ("completed", stats.completed),
                ("shed", stats.shed),
            ] {
                snap.counters.push(CounterValue {
                    name: format!("qsync_sched_{kind}{{class=\"{class}\"}}"),
                    value,
                });
            }
        }
        for (name, value) in [
            ("qsync_sched_cancelled_total", sched.cancelled),
            ("qsync_sched_expired_total", sched.expired),
            ("qsync_sched_deadline_met_total", sched.deadline_met),
            ("qsync_sched_deadline_misses_total", sched.deadline_misses),
            ("qsync_sched_aged_total", sched.aged),
        ] {
            snap.counters.push(CounterValue { name: name.to_string(), value });
        }
        snap.gauges.push(GaugeValue {
            name: "qsync_sched_deficit_carry".to_string(),
            value: self.sched.deficit_carry() as i64,
        });
        let subscribers = self.subscriber_stats();
        snap.gauges.push(GaugeValue {
            name: "qsync_event_subscribers".to_string(),
            value: subscribers.len() as i64,
        });
        for sub in &subscribers {
            snap.counters.push(CounterValue {
                name: format!("qsync_events_dropped{{conn=\"{}\"}}", sub.conn),
                value: sub.dropped,
            });
        }
        snap
    }

    /// Handle one raw input line from a connection: parse errors become
    /// error replies (in the wire form of the failing line), everything else
    /// dispatches through [`handle_command`](Self::handle_command). Blank
    /// lines are skipped.
    ///
    /// This is also where requests enter the trace machinery: plan and delta
    /// payloads that don't carry a client-chosen `trace_id` are stamped with
    /// a freshly minted one, and a `parse` span is recorded for them — the
    /// first stage of the request's reconstructable journey.
    pub(crate) fn handle_line(&self, conn: &Arc<ConnState>, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        let obs = self.engine.obs();
        obs.frame_bytes.record(line.len() as u64);
        let parse_start = obs.trace.now_us();
        match qsync_api::parse_line(line) {
            Err(e) => conn.send_err(e.wire, e.error),
            Ok(parsed) => {
                let mut cmd = parsed.cmd;
                let mut stamped = Vec::new();
                self.stamp_trace(&mut cmd, &mut stamped);
                for trace_id in stamped {
                    obs.trace.span(
                        trace_id,
                        "parse",
                        parse_start,
                        format!("{} bytes on {}", line.len(), conn.identity()),
                    );
                }
                self.handle_command(conn, parsed.wire, cmd);
            }
        }
    }

    /// Ensure every plan/delta payload in `cmd` (recursing into batches)
    /// carries a trace id, minting where the client chose none. Every
    /// stamped id is pushed onto `stamped` — batch members included — so the
    /// caller can record a `parse` span per traced payload (commands with no
    /// payload — stats reads, cancels and the like — are not traced).
    fn stamp_trace(&self, cmd: &mut ServerCommand, stamped: &mut Vec<u64>) {
        let trace = &self.engine.obs().trace;
        match cmd {
            ServerCommand::Plan(request) => {
                let id = request.trace_id.filter(|&t| t != 0).unwrap_or_else(|| trace.mint());
                request.trace_id = Some(id);
                stamped.push(id);
            }
            ServerCommand::Delta(request) => {
                let id = request.trace_id.filter(|&t| t != 0).unwrap_or_else(|| trace.mint());
                request.trace_id = Some(id);
                stamped.push(id);
            }
            ServerCommand::Batch { cmds, .. } => {
                for inner in cmds.iter_mut() {
                    self.stamp_trace(inner, stamped);
                }
            }
            _ => {}
        }
    }

    /// Dispatch one parsed command. Never blocks on planning or on the delta
    /// barrier: plans are queued, stats answer from counters, deltas are
    /// handed to the executor threads, batches fan out inline.
    pub(crate) fn handle_command(&self, conn: &Arc<ConnState>, wire: WireProto, command: ServerCommand) {
        // Overload protection runs before any other handling: a shed command
        // costs the server one token-bucket check and one error line, and
        // touches neither the scheduler nor the engine.
        if let Some(error) = self.check_rate_limit(conn, &command) {
            conn.send_err(wire, error);
            return;
        }
        match command {
            ServerCommand::Plan(request) => {
                let mut meta = request.job_meta();
                if request.client_id.is_none() {
                    // Fair-queue anonymous requests per connection, so one
                    // flooding connection cannot starve the others.
                    meta.client = conn.identity();
                }
                let request_id = request.id;
                conn.begin();
                // Hold the ticket-map lock across the submit: a woken worker
                // checks the map at dispatch, so inserting after an unlocked
                // submit could leave a stale entry for an already-dispatched
                // job.
                let mut tickets = self.tickets.lock().expect("ticket map poisoned");
                match self.sched.submit(ServeJob::Plan { request, conn: Arc::clone(conn), wire }, meta)
                {
                    Ok(ticket) => {
                        tickets.insert((conn.id, request_id), ticket);
                    }
                    Err(rejected) => {
                        drop(tickets);
                        // Admission control: shed immediately.
                        conn.send_err(wire, submit_error(&rejected.error).with_id(request_id));
                        conn.end();
                    }
                }
            }
            ServerCommand::Stats { id } => {
                // Stats are a monitoring read: answer immediately from
                // counters, never behind queued work or a delta barrier.
                conn.send(wire, &ServerReply::Stats {
                    id,
                    stats: self.engine.cache().stats(),
                    sched: Some(self.sched.stats()),
                    deltas: self.engine.delta_stats(),
                    subscribers: self.subscriber_stats(),
                });
            }
            ServerCommand::Metrics { id } => {
                // Like Stats: a monitoring read answered inline from
                // counters, never behind queued work or a delta barrier.
                conn.send(wire, &ServerReply::Metrics { id, metrics: self.metrics_snapshot() });
            }
            ServerCommand::Trace { id, trace_id, limit } => {
                let trace = &self.engine.obs().trace;
                let limit = limit.unwrap_or(trace.capacity());
                conn.send(wire, &ServerReply::Trace {
                    id,
                    trace_id,
                    spans: trace.spans_for(trace_id, limit),
                });
            }
            ServerCommand::Resync { id } => {
                // Baseline first, keys second: any event broadcast between
                // the two shows up both in `keys` and as a seq at or past
                // the baseline, so the client double-applies instead of
                // missing.
                let seq = self.event_seq.load(Ordering::Relaxed);
                let keys = self.engine.cache().keys();
                let dropped = self
                    .subscribers
                    .lock()
                    .expect("subscriber map poisoned")
                    .get_mut(&conn.id)
                    .map(|sub| std::mem::take(&mut sub.dropped))
                    .unwrap_or(0);
                conn.send(wire, &ServerReply::Resynced { id, seq, keys, dropped });
            }
            ServerCommand::Cancel { id, plan_id } => {
                let ticket =
                    self.tickets.lock().expect("ticket map poisoned").remove(&(conn.id, plan_id));
                let cancelled = ticket.is_some_and(|t| self.sched.cancel(t));
                conn.send(wire, &ServerReply::Cancelled { id, plan_id, cancelled });
                if cancelled {
                    // The cancelled plan will never reply; the confirmation
                    // above was its reply.
                    conn.end();
                }
            }
            ServerCommand::Delta(request) => {
                let request_id = request.id;
                conn.begin();
                // Inline (simulation) core: queue for the next pump wave
                // instead of handing off to executor threads.
                {
                    let mut inline = self.inline_deltas.lock().expect("inline delta queue poisoned");
                    if let Some(queue) = inline.as_mut() {
                        queue.push_back(DeltaTask { request, conn: Arc::clone(conn), wire });
                        return;
                    }
                }
                let tx = self.delta_tx.lock().expect("delta sender poisoned").clone();
                let handed_off = tx.is_some_and(|tx| {
                    tx.send(DeltaTask { request, conn: Arc::clone(conn), wire }).is_ok()
                });
                if !handed_off {
                    conn.send_err(
                        wire,
                        ApiError::new(
                            ErrorCode::ShuttingDown,
                            "server is shutting down; delta not applied",
                        )
                        .with_id(request_id),
                    );
                    conn.end();
                }
            }
            ServerCommand::Hello { id, .. } => {
                conn.send(wire, &ServerReply::Hello {
                    id,
                    min_v: MIN_PROTOCOL_VERSION,
                    max_v: MAX_PROTOCOL_VERSION,
                    server: SERVER_IDENT.to_owned(),
                });
            }
            ServerCommand::Batch { id, cmds } => {
                if cmds.iter().any(|c| matches!(c, ServerCommand::Batch { .. })) {
                    conn.send_err(
                        wire,
                        ApiError::new(ErrorCode::InvalidField, "nested Batch commands are not allowed")
                            .with_id(id)
                            .with_field("cmds"),
                    );
                    return;
                }
                // Dispatch in order; every inner command produces its own
                // reply (the batch itself replies only on rejection above).
                for cmd in cmds {
                    self.handle_command(conn, wire, cmd);
                }
            }
            ServerCommand::Subscribe { id, adopt } => {
                self.subscribers
                    .lock()
                    .expect("subscriber map poisoned")
                    .insert(conn.id, Subscriber { wire, conn: Arc::clone(conn), dropped: 0, adopt });
                conn.send(wire, &ServerReply::Subscribed { id });
            }
            ServerCommand::Unsubscribe { id } => {
                self.subscribers.lock().expect("subscriber map poisoned").remove(&conn.id);
                conn.send(wire, &ServerReply::Unsubscribed { id });
            }
            ServerCommand::Snapshot { id, path } => {
                // An admin write: runs inline on the transport thread (the
                // cache is concurrent; no barrier needed) so it can't be
                // starved by queued planning work.
                let reply = match self.store_path(path) {
                    None => ServerReply::Fault(no_store_error(id)),
                    Some(path) => match persist::snapshot_to_path(&self.engine, &path) {
                        Ok((entries, bytes)) => ServerReply::Snapshotted {
                            id,
                            path: path.display().to_string(),
                            entries,
                            bytes,
                        },
                        Err(error) => ServerReply::Fault(
                            ApiError::new(ErrorCode::Internal, format!("snapshot failed: {error}"))
                                .with_id(id),
                        ),
                    },
                };
                conn.send(wire, &reply);
            }
            ServerCommand::Load { id, path } => {
                let reply = match self.store_path(path) {
                    None => ServerReply::Fault(no_store_error(id)),
                    Some(path) => match persist::load_from_path(&self.engine, &path) {
                        Ok(stats) => ServerReply::Loaded {
                            id,
                            path: path.display().to_string(),
                            plans: stats.plans,
                            memos: stats.memos,
                            skipped: stats.skipped,
                            bytes: stats.bytes,
                        },
                        Err(error) => ServerReply::Fault(
                            ApiError::new(ErrorCode::Internal, format!("load failed: {error}"))
                                .with_id(id),
                        ),
                    },
                };
                conn.send(wire, &reply);
            }
            ServerCommand::FetchSnapshot { id } => {
                // The replication bootstrap: the same encoding a snapshot
                // file holds, shipped as one reply line.
                let (data, entries) = persist::snapshot_string(&self.engine);
                conn.send(wire, &ServerReply::SnapshotData {
                    id,
                    entries,
                    bytes: data.len() as u64,
                    data,
                });
            }
        }
    }

    /// Planner-thread body: drain the scheduler until it closes.
    fn worker_loop(&self) {
        while let Some(job) = self.sched.next() {
            self.process_dispatch(job);
        }
    }

    /// Execute one dispatched scheduler job — shared by the worker threads
    /// and the inline core's [`pump`](Self::pump).
    fn process_dispatch(&self, mut job: Dispatch<ServeJob>) {
        let obs = Arc::clone(self.engine.obs());
        let expired = job.expired();
        let wait_ms = job.queue_wait_ms();
        obs.dispatch_wait_ms.record(wait_ms);
        match job.take_payload() {
            ServeJob::Plan { request, conn, wire } => {
                let mut tickets = self.tickets.lock().expect("ticket map poisoned");
                if tickets.get(&(conn.id, request.id)) == Some(&job.id()) {
                    tickets.remove(&(conn.id, request.id));
                }
                drop(tickets);
                let trace_id = request.trace_id.unwrap_or(0);
                if trace_id != 0 {
                    // The dispatch span covers the time the job sat in
                    // its queue, ending now (at worker pickup).
                    let now = obs.trace.now_us();
                    obs.trace.span(
                        trace_id,
                        "dispatch",
                        now.saturating_sub(wait_ms.saturating_mul(1000)),
                        format!("queued {wait_ms} ms"),
                    );
                }
                let reply = if expired {
                    ServerReply::Fault(
                        ApiError::new(
                            ErrorCode::DeadlineExceeded,
                            format!(
                                "deadline exceeded before planning started (queued {wait_ms} ms)"
                            ),
                        )
                        .with_id(request.id),
                    )
                } else {
                    self.record_op(|| SimOp::Plan(request.clone()));
                    match self.engine.plan(&request) {
                        Ok(response) => {
                            // A plan actually computed (not a cache hit) is
                            // news: fire-and-forget watchers key on it, and
                            // adopt-subscribed replicas mirror the entry.
                            if response.outcome != PlanOutcome::CacheHit {
                                self.broadcast(ServerEvent::PlanReady {
                                    key: response.key.clone(),
                                    outcome: response.outcome,
                                    predicted_iteration_us: response.predicted_iteration_us,
                                    trace_id: response.trace_id.unwrap_or(0),
                                    adopt: self.adopt_payload(&response.key),
                                });
                            }
                            ServerReply::Plan(response)
                        }
                        Err(error) => ServerReply::Fault(error),
                    }
                };
                let write_start = obs.trace.now_us();
                conn.send(wire, &reply);
                if trace_id != 0 {
                    obs.trace.span(
                        trace_id,
                        "reply_write",
                        write_start,
                        format!("to {}", conn.identity()),
                    );
                }
                conn.end();
            }
            ServeJob::Replan { index, chain, tx } => {
                let _ = tx.send((index, self.engine.run_replan_chain(&chain)));
            }
        }
    }

    /// Delta-executor body: apply deltas off the transport threads so
    /// connections keep streaming (and stats keep answering) while a barrier
    /// is pending.
    fn delta_loop(&self, rx: &Mutex<mpsc::Receiver<DeltaTask>>) {
        loop {
            // Hold the receiver lock only while waiting; concurrent tasks
            // then process in parallel (and coalesce in the engine). With a
            // snapshot interval configured, the wait is bounded so periodic
            // snapshots ride the executor that holds the lock — no dedicated
            // snapshot thread.
            let task = {
                let rx = rx.lock().expect("delta receiver poisoned");
                match self.snapshot_timeout() {
                    None => match rx.recv() {
                        Ok(task) => Some(task),
                        Err(_) => return,
                    },
                    Some(timeout) => match rx.recv_timeout(timeout) {
                        Ok(task) => Some(task),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    },
                }
            };
            let Some(task) = task else {
                self.maybe_periodic_snapshot();
                continue;
            };
            // Barrier: every plan submitted (on any connection) before this
            // delta completes first. Plans submitted after the barrier began
            // are not waited for, so the barrier cannot starve under
            // continuous cross-connection traffic.
            self.sched.quiesce();
            let task_tid = task.request.trace_id.unwrap_or(0);
            let reply = match self.engine.apply_delta_coalesced_with(&task.request, |chains| {
                // Wave leader: announce the evictions, then fan the re-plans
                // out (each completion is broadcast as it lands).
                self.broadcast(ServerEvent::CacheInvalidated {
                    keys: chains.iter().map(|c| c.entry.response.key.clone()).collect(),
                    trace_id: task_tid,
                });
                self.fan_out_replans(chains)
            }) {
                Ok(outcome) => {
                    self.broadcast(ServerEvent::DeltaApplied {
                        id: outcome.id,
                        old_cluster_fingerprint: outcome.old_cluster_fingerprint.clone(),
                        new_cluster_fingerprint: outcome.new_cluster_fingerprint.clone(),
                        invalidated: outcome.invalidated,
                        replanned: outcome.replanned.len(),
                        trace_id: outcome.trace_id.unwrap_or(0),
                    });
                    ServerReply::Delta(outcome)
                }
                Err(error) => ServerReply::Fault(error),
            };
            task.conn.send(task.wire, &reply);
            task.conn.end();
        }
    }

    /// Execute a delta wave's re-plan chains on the worker pool: submit each
    /// as a batch-class job, collect the results, and return them in chain
    /// order. A chain the batch queue sheds (cap reached) runs inline on the
    /// calling thread — re-plans are never lost. Every completed re-plan is
    /// broadcast to subscribers.
    fn fan_out_replans(&self, chains: Vec<ReplanChain>) -> Vec<PlanResponse> {
        let fanout_start = Instant::now();
        let total = chains.len();
        let (tx, rx) = mpsc::channel();
        let mut inline: Vec<(usize, Box<ReplanChain>)> = Vec::new();
        for (index, chain) in chains.into_iter().enumerate() {
            let job = ServeJob::Replan { index, chain: Box::new(chain), tx: tx.clone() };
            let meta = JobMeta::new("__elastic", Priority::Batch);
            if let Err(rejected) = self.sched.submit(job, meta) {
                let ServeJob::Replan { index, chain, .. } = rejected.payload else {
                    unreachable!("rejected payload is the submitted replan job")
                };
                inline.push((index, chain));
            }
        }
        drop(tx);
        let mut responses: Vec<Option<PlanResponse>> = (0..total).map(|_| None).collect();
        for (index, chain) in inline {
            responses[index] = Some(self.engine.run_replan_chain(&chain));
        }
        for (index, response) in rx {
            responses[index] = Some(response);
        }
        let responses: Vec<PlanResponse> = responses
            .into_iter()
            .map(|r| r.expect("every replan chain completed"))
            .collect();
        for response in &responses {
            self.broadcast(ServerEvent::Replanned {
                key: response.key.clone(),
                outcome: response.outcome,
                predicted_iteration_us: response.predicted_iteration_us,
                trace_id: response.trace_id.unwrap_or(0),
                adopt: self.adopt_payload(&response.key),
            });
        }
        self.engine
            .obs()
            .fanout_us
            .record(fanout_start.elapsed().as_micros() as u64);
        responses
    }
}

/// The error for `Snapshot`/`Load` on a server with no configured store and
/// no explicit `path` operand.
fn no_store_error(id: u64) -> ApiError {
    ApiError::new(
        ErrorCode::InvalidField,
        "no store path: pass `path` or start the server with --store",
    )
    .with_id(id)
    .with_field("path")
}

/// The `id` operand of any command (every command shape carries one; a plan
/// or delta's is its request id) — what a rate-limit shed error echoes so
/// the client can correlate it.
fn command_id(command: &ServerCommand) -> u64 {
    match command {
        ServerCommand::Plan(request) => request.id,
        ServerCommand::Delta(request) => request.id,
        ServerCommand::Stats { id }
        | ServerCommand::Metrics { id }
        | ServerCommand::Trace { id, .. }
        | ServerCommand::Resync { id }
        | ServerCommand::Cancel { id, .. }
        | ServerCommand::Hello { id, .. }
        | ServerCommand::Batch { id, .. }
        | ServerCommand::Subscribe { id, .. }
        | ServerCommand::Unsubscribe { id }
        | ServerCommand::Snapshot { id, .. }
        | ServerCommand::Load { id, .. }
        | ServerCommand::FetchSnapshot { id } => *id,
    }
}

/// Map a scheduler admission failure to its protocol error code, keeping the
/// v0 message text.
fn submit_error(error: &SubmitError) -> ApiError {
    let code = match error {
        SubmitError::QueueFull { .. } => ErrorCode::QueueFull,
        SubmitError::Closed => ErrorCode::ShuttingDown,
    };
    ApiError::new(code, error.to_string())
}

/// The plan server: a shared [`PlanEngine`], a worker-pool size, the
/// scheduler configuration and the transport tuning.
#[derive(Debug, Clone)]
pub struct PlanServer {
    engine: Arc<PlanEngine>,
    workers: usize,
    sched: SchedConfig,
    transport: TransportConfig,
    clock: Arc<dyn Clock>,
    store: Option<StoreConfig>,
}

impl PlanServer {
    /// A server over a fresh engine with `workers` planner threads (min 1)
    /// and the default scheduler (DRR, generous per-class caps).
    pub fn new(workers: usize) -> Self {
        Self::with_engine(PlanEngine::shared(), workers)
    }

    /// A server over an existing engine (e.g. to pre-warm the cache).
    pub fn with_engine(engine: Arc<PlanEngine>, workers: usize) -> Self {
        Self::with_sched(engine, workers, SchedConfig::default())
    }

    /// A server with an explicit scheduler configuration (policy, per-class
    /// queue caps, quantum, expired-job shedding).
    pub fn with_sched(engine: Arc<PlanEngine>, workers: usize, sched: SchedConfig) -> Self {
        PlanServer {
            engine,
            workers: workers.max(1),
            sched,
            transport: TransportConfig::default(),
            clock: Arc::new(SystemClock::new()),
            store: None,
        }
    }

    /// This server with a persistent plan store: the serving paths warm-load
    /// it on start (a missing or corrupt file boots cold, never fails),
    /// `Snapshot`/`Load` default to its path, a configured interval writes
    /// periodic snapshots on the delta executors, and shutdown writes a
    /// final one.
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// This server with an explicit transport configuration (line-length
    /// cap, per-connection buffer cap, shutdown drain budget).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// This server over an explicit time source. Every timed behavior —
    /// scheduler deadlines, accept backoff, the shutdown drain window, the
    /// delta coalescer (when built through
    /// [`PlanEngine::with_full_config`](crate::engine::PlanEngine::with_full_config))
    /// — reads this clock; injecting a
    /// [`ManualClock`](qsync_clock::ManualClock) puts them all on virtual
    /// time together.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<PlanEngine> {
        &self.engine
    }

    /// The worker-pool size.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduler configuration.
    pub(crate) fn sched_config(&self) -> &SchedConfig {
        &self.sched
    }

    /// The transport configuration.
    pub(crate) fn transport_config(&self) -> &TransportConfig {
        &self.transport
    }

    /// The server's time source.
    pub(crate) fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The store configuration, if any.
    pub fn store(&self) -> Option<&StoreConfig> {
        self.store.as_ref()
    }

    /// Wire the configured store into a freshly started core and warm-load
    /// the snapshot file if one exists. Load failures (corrupt, unreadable)
    /// are reported to stderr and the server boots cold — a bad snapshot
    /// must never prevent serving.
    pub(crate) fn attach_store(&self, core: &Arc<ServeCore>) {
        let Some(store) = &self.store else {
            return;
        };
        core.set_store(store.clone());
        if !store.path.exists() {
            return;
        }
        match persist::load_from_path(&self.engine, &store.path) {
            Ok(stats) => eprintln!(
                "qsync-serve: warm boot from {}: {} plans, {} memos, {} skipped ({} bytes)",
                store.path.display(),
                stats.plans,
                stats.memos,
                stats.skipped,
                stats.bytes
            ),
            Err(error) => eprintln!(
                "qsync-serve: store load failed ({error}); starting cold from {}",
                store.path.display()
            ),
        }
    }

    /// Serve one command synchronously, without a scheduler (one-shot use;
    /// the streaming paths are [`serve_lines`](Self::serve_lines) and
    /// [`serve_listener`](Self::serve_listener)). Streaming-only commands
    /// (`Batch`, `Subscribe`, `Unsubscribe`) report
    /// [`ErrorCode::Unsupported`].
    pub fn handle(&self, command: ServerCommand) -> ServerReply {
        match command {
            ServerCommand::Plan(request) => match self.engine.plan(&request) {
                Ok(response) => ServerReply::Plan(response),
                Err(error) => ServerReply::Fault(error),
            },
            ServerCommand::Delta(request) => match self.engine.apply_delta(&request) {
                Ok(outcome) => ServerReply::Delta(outcome),
                Err(error) => ServerReply::Fault(error),
            },
            ServerCommand::Stats { id } => ServerReply::Stats {
                id,
                stats: self.engine.cache().stats(),
                sched: None,
                deltas: self.engine.delta_stats(),
                subscribers: Vec::new(),
            },
            ServerCommand::Metrics { id } => ServerReply::Metrics {
                id,
                metrics: self.engine.metrics_snapshot(),
            },
            ServerCommand::Trace { id, trace_id, limit } => {
                let trace = &self.engine.obs().trace;
                let spans = trace.spans_for(trace_id, limit.unwrap_or_else(|| trace.capacity()));
                ServerReply::Trace { id, trace_id, spans }
            }
            ServerCommand::Cancel { id, plan_id } => {
                // Nothing queues outside the streaming paths; there is
                // nothing to cancel.
                ServerReply::Cancelled { id, plan_id, cancelled: false }
            }
            ServerCommand::Hello { id, .. } => ServerReply::Hello {
                id,
                min_v: MIN_PROTOCOL_VERSION,
                max_v: MAX_PROTOCOL_VERSION,
                server: SERVER_IDENT.to_owned(),
            },
            ServerCommand::Snapshot { id, path } => {
                match path.map(PathBuf::from).or_else(|| self.store.as_ref().map(|s| s.path.clone()))
                {
                    None => ServerReply::Fault(no_store_error(id)),
                    Some(path) => match persist::snapshot_to_path(&self.engine, &path) {
                        Ok((entries, bytes)) => ServerReply::Snapshotted {
                            id,
                            path: path.display().to_string(),
                            entries,
                            bytes,
                        },
                        Err(error) => ServerReply::Fault(
                            ApiError::new(ErrorCode::Internal, format!("snapshot failed: {error}"))
                                .with_id(id),
                        ),
                    },
                }
            }
            ServerCommand::Load { id, path } => {
                match path.map(PathBuf::from).or_else(|| self.store.as_ref().map(|s| s.path.clone()))
                {
                    None => ServerReply::Fault(no_store_error(id)),
                    Some(path) => match persist::load_from_path(&self.engine, &path) {
                        Ok(stats) => ServerReply::Loaded {
                            id,
                            path: path.display().to_string(),
                            plans: stats.plans,
                            memos: stats.memos,
                            skipped: stats.skipped,
                            bytes: stats.bytes,
                        },
                        Err(error) => ServerReply::Fault(
                            ApiError::new(ErrorCode::Internal, format!("load failed: {error}"))
                                .with_id(id),
                        ),
                    },
                }
            }
            ServerCommand::FetchSnapshot { id } => {
                let (data, entries) = persist::snapshot_string(&self.engine);
                ServerReply::SnapshotData { id, entries, bytes: data.len() as u64, data }
            }
            ServerCommand::Batch { id, .. }
            | ServerCommand::Subscribe { id, .. }
            | ServerCommand::Unsubscribe { id }
            | ServerCommand::Resync { id } => ServerReply::Fault(
                ApiError::new(
                    ErrorCode::Unsupported,
                    "this command requires a streaming connection",
                )
                .with_id(id),
            ),
        }
    }

    /// Serve a JSON-line stream until EOF — the blocking adapter over the
    /// same [`ServeCore`] the TCP reactor uses. Plan commands are scheduled
    /// onto the worker pool; stats answer immediately; deltas run on the
    /// executor threads (quiescing the scheduler, coalescing with concurrent
    /// deltas, fanning re-plans out through the batch class). Returns once
    /// every accepted command has been answered.
    pub fn serve_lines<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<()> {
        let handle = ServeCore::start(
            Arc::clone(&self.engine),
            self.workers,
            self.sched.clone(),
            self.transport.event_outbox_cap,
            self.clock(),
        );
        handle.core.set_rate_limit(self.transport.rate_limit);
        self.attach_store(&handle.core);
        let core = Arc::clone(&handle.core);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        let conn = core.register_conn(Sink::Line(reply_tx));
        let mut io_error: Option<std::io::Error> = None;

        thread::scope(|scope| {
            // Replies are produced by worker/delta threads; a dedicated
            // writer thread owns the (possibly non-'static) writer. Write
            // errors are swallowed, as they always were on this path — the
            // reader side decides when the stream ends.
            let writer_thread = scope.spawn(move || {
                let mut writer = writer;
                for line in reply_rx {
                    if writeln!(writer, "{line}").is_err() || writer.flush().is_err() {
                        // Keep draining so reply producers never observe a
                        // closed channel mid-stream.
                    }
                }
            });
            for line in reader.lines() {
                match line {
                    Ok(line) => core.handle_line(&conn, &line),
                    Err(e) => {
                        io_error = Some(e);
                        break;
                    }
                }
            }
            // Every accepted command replies (worker plans, delta executors)
            // before the reply channel may close.
            conn.wait_idle();
            core.drop_conn(conn.id());
            drop(conn);
            writer_thread.join().expect("writer thread panicked");
        });
        handle.stop();

        match io_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serve one already-accepted TCP connection with a private core (the
    /// single-connection helper; fleets should use
    /// [`serve_listener`](Self::serve_listener), which multiplexes every
    /// connection onto one shared core).
    pub fn serve_stream(&self, stream: TcpStream) -> std::io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        self.serve_lines(reader, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use qsync_cluster::topology::ClusterSpec;

    fn plan_line(id: u64) -> String {
        let request = PlanRequest::new(
            id,
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ClusterSpec::hybrid_small(),
        );
        serde_json::to_string(&ServerCommand::Plan(request)).unwrap()
    }

    fn parse_replies(raw: &[u8]) -> Vec<ServerReply> {
        String::from_utf8_lossy(raw)
            .lines()
            .map(|l| serde_json::from_str::<ServerReply>(l).expect("reply parses"))
            .collect()
    }

    #[test]
    fn serves_a_stream_of_commands() {
        let input = format!("{}\n{}\n{}\n", plan_line(1), plan_line(2), r#"{"Stats":{"id":3}}"#);
        let server = PlanServer::new(4);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let replies = parse_replies(&out);
        assert_eq!(replies.len(), 3);
        // Stats answers immediately (no barrier), so the streamed reply may
        // predate the plan completions — only its presence is asserted here.
        assert!(replies.iter().any(|r| matches!(r, ServerReply::Stats { id: 3, .. })));
        // After EOF every worker has drained: identical requests were one
        // miss then one hit.
        let stats = server.engine().cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn bad_lines_produce_error_replies() {
        let input = "this is not json\n";
        let server = PlanServer::new(1);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let replies = parse_replies(&out);
        assert_eq!(replies.len(), 1);
        // Legacy lines draw the legacy error shape, byte-compatible with v0.
        assert!(matches!(&replies[0], ServerReply::Error { id: None, .. }));
    }

    #[test]
    fn enveloped_commands_get_enveloped_replies() {
        let plan: ServerCommand = serde_json::from_str(&plan_line(4)).unwrap();
        let input = format!(
            "{}\n{}\n",
            serde_json::to_string(&qsync_api::RequestEnvelope::v1(plan)).unwrap(),
            r#"{"v":1,"id":9,"cmd":{"Stats":{"id":9}}}"#,
        );
        let server = PlanServer::new(2);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let envelopes: Vec<qsync_api::ReplyEnvelope> = String::from_utf8_lossy(&out)
            .lines()
            .map(|l| serde_json::from_str(l).expect("enveloped reply parses"))
            .collect();
        assert_eq!(envelopes.len(), 2);
        assert!(envelopes.iter().all(|e| e.v == qsync_api::PROTOCOL_VERSION));
        assert!(envelopes
            .iter()
            .any(|e| matches!(&e.reply, ServerReply::Plan(p) if p.id == 4)));
        assert!(envelopes.iter().any(|e| matches!(&e.reply, ServerReply::Stats { id: 9, .. })));
    }

    #[test]
    fn mixed_wire_forms_share_one_connection() {
        // A legacy Stats and an enveloped Stats on the same stream: each is
        // answered in its own form.
        let input = format!("{}\n{}\n", r#"{"Stats":{"id":1}}"#, r#"{"v":1,"cmd":{"Stats":{"id":2}}}"#);
        let server = PlanServer::new(1);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8_lossy(&out);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let legacy = lines.iter().find(|l| !l.contains("\"v\":")).expect("legacy reply");
        let enveloped = lines.iter().find(|l| l.contains("\"v\":")).expect("enveloped reply");
        assert!(matches!(
            serde_json::from_str::<ServerReply>(legacy).unwrap(),
            ServerReply::Stats { id: 1, .. }
        ));
        let envelope: qsync_api::ReplyEnvelope = serde_json::from_str(enveloped).unwrap();
        assert!(matches!(envelope.reply, ServerReply::Stats { id: 2, .. }));
    }

    #[test]
    fn hello_advertises_the_supported_version_range() {
        let server = PlanServer::new(1);
        let reply = server.handle(ServerCommand::Hello { id: 5, min_v: 1, max_v: 1 });
        let ServerReply::Hello { id, min_v, max_v, server: ident } = reply else {
            panic!("expected hello reply, got {reply:?}")
        };
        assert_eq!(id, 5);
        assert_eq!(min_v, MIN_PROTOCOL_VERSION);
        assert_eq!(max_v, MAX_PROTOCOL_VERSION);
        assert!(ident.starts_with("qsync-serve/"), "{ident}");
    }

    #[test]
    fn queue_cap_zero_sheds_every_plan() {
        let engine = PlanEngine::shared();
        let sched = SchedConfig { class_caps: [0; 3], ..SchedConfig::default() };
        let server = PlanServer::with_sched(engine, 2, sched);
        let input = format!("{}\n{}\n", plan_line(1), plan_line(2));
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let replies = parse_replies(&out);
        assert_eq!(replies.len(), 2);
        for reply in &replies {
            match reply {
                ServerReply::Error { id: Some(_), message } => {
                    assert!(message.contains("shed"), "unexpected message {message:?}");
                }
                other => panic!("expected shed error, got {other:?}"),
            }
        }
        assert_eq!(server.engine().cache().stats().misses, 0, "nothing was planned");
    }

    #[test]
    fn shed_of_an_enveloped_plan_reports_the_queue_full_code() {
        let engine = PlanEngine::shared();
        let sched = SchedConfig { class_caps: [0; 3], ..SchedConfig::default() };
        let server = PlanServer::with_sched(engine, 1, sched);
        let plan: ServerCommand = serde_json::from_str(&plan_line(7)).unwrap();
        let input =
            format!("{}\n", serde_json::to_string(&qsync_api::RequestEnvelope::v1(plan)).unwrap());
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let envelope: qsync_api::ReplyEnvelope =
            serde_json::from_str(String::from_utf8_lossy(&out).lines().next().unwrap()).unwrap();
        let ServerReply::Fault(error) = envelope.reply else {
            panic!("expected structured fault, got {:?}", envelope.reply)
        };
        assert_eq!(error.code, ErrorCode::QueueFull);
        assert_eq!(error.id, Some(7));
        assert!(error.message.contains("shed"));
    }

    #[test]
    fn cancel_of_unknown_plan_reports_false() {
        let input = r#"{"Cancel":{"id":5,"plan_id":99}}"#.to_string() + "\n";
        let server = PlanServer::new(1);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let replies = parse_replies(&out);
        assert_eq!(
            replies,
            vec![ServerReply::Cancelled { id: 5, plan_id: 99, cancelled: false }]
        );
    }

    #[test]
    fn stats_reply_carries_scheduler_counters() {
        let input = format!("{}\n{}\n", plan_line(1), r#"{"Stats":{"id":2}}"#);
        let server = PlanServer::new(1);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let stats = parse_replies(&out)
            .into_iter()
            .find_map(|r| match r {
                ServerReply::Stats { sched, .. } => Some(sched),
                _ => None,
            })
            .expect("stats reply present");
        let sched = stats.expect("streaming path reports scheduler stats");
        assert_eq!(sched.policy, "drr");
        assert_eq!(sched.interactive.submitted, 1);
    }

    #[test]
    fn batch_dispatches_inner_commands_in_order() {
        let plan: ServerCommand = serde_json::from_str(&plan_line(21)).unwrap();
        let batch = ServerCommand::Batch {
            id: 20,
            cmds: vec![plan, ServerCommand::Stats { id: 22 }],
        };
        let input = format!(
            "{}\n",
            serde_json::to_string(&qsync_api::RequestEnvelope::v1(batch)).unwrap()
        );
        let server = PlanServer::new(2);
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let replies: Vec<ServerReply> = String::from_utf8_lossy(&out)
            .lines()
            .map(|l| serde_json::from_str::<qsync_api::ReplyEnvelope>(l).unwrap().reply)
            .collect();
        assert_eq!(replies.len(), 2, "one reply per inner command, none for the batch itself");
        assert!(replies.iter().any(|r| matches!(r, ServerReply::Plan(p) if p.id == 21)));
        assert!(replies.iter().any(|r| matches!(r, ServerReply::Stats { id: 22, .. })));

        // Nested batches are rejected with a structured fault.
        let nested = ServerCommand::Batch {
            id: 30,
            cmds: vec![ServerCommand::Batch { id: 31, cmds: vec![] }],
        };
        let input = format!(
            "{}\n",
            serde_json::to_string(&qsync_api::RequestEnvelope::v1(nested)).unwrap()
        );
        let mut out: Vec<u8> = Vec::new();
        server.serve_lines(input.as_bytes(), &mut out).unwrap();
        let envelope: qsync_api::ReplyEnvelope =
            serde_json::from_str(String::from_utf8_lossy(&out).lines().next().unwrap()).unwrap();
        let ServerReply::Fault(error) = envelope.reply else { panic!("expected fault") };
        assert_eq!(error.code, ErrorCode::InvalidField);
        assert_eq!(error.id, Some(30));
        assert_eq!(error.field.as_deref(), Some("cmds"));
    }

    #[test]
    fn batch_members_get_parse_spans() {
        let engine = PlanEngine::shared();
        let handle = ServeCore::start(
            Arc::clone(&engine),
            1,
            SchedConfig::default(),
            4 << 20,
            Arc::new(SystemClock::new()),
        );
        let (tx, _rx) = mpsc::channel();
        let conn = handle.core.register_conn(Sink::Line(tx));
        let plan: ServerCommand = serde_json::from_str(&plan_line(21)).unwrap();
        let ServerCommand::Plan(mut request) = plan else { panic!("plan_line yields a Plan") };
        request.trace_id = Some(555);
        let mut delta_request = DeltaRequest::new(
            22,
            ClusterSpec::hybrid_small(),
            qsync_api::ClusterDelta::Degraded {
                rank: 0,
                memory_fraction: 0.9,
                compute_fraction: 0.9,
            },
        );
        delta_request.trace_id = Some(556);
        let batch = ServerCommand::Batch {
            id: 20,
            cmds: vec![ServerCommand::Plan(request), ServerCommand::Delta(delta_request)],
        };
        let line =
            serde_json::to_string(&qsync_api::RequestEnvelope::v1(batch)).unwrap();
        // The parse span is recorded synchronously in handle_line, before the
        // inner commands dispatch — so it is visible as soon as the call
        // returns, for every traced payload of the batch.
        handle.core.handle_line(&conn, &line);
        for trace_id in [555, 556] {
            let spans = engine.obs().trace.spans_for(trace_id, 16);
            assert!(
                spans.iter().any(|s| s.stage == "parse"),
                "batch member trace {trace_id} is missing its parse span: {spans:?}"
            );
        }
        handle.stop();
    }

    #[test]
    fn anonymous_requests_fair_queue_under_the_connection_identity() {
        let engine = PlanEngine::shared();
        let handle = ServeCore::start(
            Arc::clone(&engine),
            1,
            SchedConfig::default(),
            4 << 20,
            Arc::new(SystemClock::new()),
        );
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, _rx_b) = mpsc::channel();
        let a = handle.core.register_conn(Sink::Line(tx_a));
        let b = handle.core.register_conn(Sink::Line(tx_b));
        assert_ne!(a.identity(), b.identity(), "each connection gets its own DRR queue");
        // And an explicit client_id overrides the connection identity — the
        // submit path is exercised end-to-end by the transport e2e tests.
        handle.stop();
    }
}
