//! Plan request/response types — re-exported from the protocol crate.
//!
//! Since the protocol extraction these are defined in [`qsync_api::request`]
//! (they are the wire contract, shared with `qsync-client`); this module
//! remains so existing `qsync_serve::request::…` paths keep working.

pub use qsync_api::{IndicatorChoice, PlanOutcome, PlanRequest, PlanResponse};
