//! The admin port: Prometheus-style text exposition of the server's metrics
//! over plain HTTP.
//!
//! A deliberately tiny, dependency-free HTTP/1.x responder: every request —
//! whatever its path — is answered with `200 OK`, `Content-Type:
//! text/plain; version=0.0.4`, and the [`PlanEngine`]'s full metrics
//! snapshot rendered by
//! [`MetricsSnapshot::render_prometheus`](qsync_obs::MetricsSnapshot::render_prometheus).
//! One short-lived connection per scrape (`Connection: close`), handled
//! sequentially on the calling thread: scrapers poll at second granularity,
//! so one slow reader delaying the next scrape beats spawning per-request
//! threads on a port that must never interfere with the serving path.
//!
//! The exposition is engine-scoped (cache, planner latencies, delta
//! pipeline, plus the transport/scheduler counters the engine's shared
//! [`ServeObs`](crate::metrics::ServeObs) accumulates); the wire `Metrics`
//! command returns the same snapshot plus the per-connection dynamics only
//! the live core knows (queue depths, subscriber backlogs).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::PlanEngine;

/// Serve metrics scrapes on an already-bound listener until it errors (the
/// caller owns the thread; see the `--admin-addr` flag of `qsync-serve`).
pub fn serve_admin(engine: Arc<PlanEngine>, listener: TcpListener) -> io::Result<()> {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // A misbehaving scraper must not wedge the admin loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = answer_scrape(&engine, stream);
    }
}

/// Read the request head (discarded beyond its end) and write one
/// plain-text metrics response.
fn answer_scrape(engine: &Arc<PlanEngine>, mut stream: TcpStream) -> io::Result<()> {
    // Drain the request head so the peer never sees a reset before reading
    // our response; the content is irrelevant (every path is the metrics
    // endpoint) and capped so a garbage peer cannot buffer unboundedly.
    let mut head = [0u8; 4096];
    let mut seen = 0;
    while seen < head.len() {
        let n = match stream.read(&mut head[seen..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        seen += n;
        if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") || head[..seen].contains(&b'\n') {
            break;
        }
    }
    let body = engine.metrics_snapshot().render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::request::PlanRequest;
    use qsync_cluster::topology::ClusterSpec;

    fn scrape(addr: std::net::SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn admin_port_answers_http_scrapes_with_the_text_exposition() {
        let engine = PlanEngine::shared();
        let model = ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 };
        engine
            .plan(&PlanRequest::new(1, model.clone(), ClusterSpec::hybrid_small()))
            .expect("cold plan");
        engine
            .plan(&PlanRequest::new(2, model, ClusterSpec::hybrid_small()))
            .expect("cache hit");

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind admin port");
        let addr = listener.local_addr().expect("local addr");
        let serving = Arc::clone(&engine);
        std::thread::spawn(move || serve_admin(serving, listener));

        let response = scrape(addr);
        let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "unexpected status: {head}");
        assert!(head.contains("text/plain"), "unexpected content type: {head}");
        assert!(body.contains("qsync_cache_hits_total 1"), "missing hit counter:\n{body}");
        assert!(
            body.contains("# TYPE qsync_plan_latency_us histogram"),
            "missing plan latency histogram:\n{body}"
        );
        assert!(
            body.contains("qsync_plan_latency_us_count{kind=\"cold\"} 1"),
            "missing cold latency sample:\n{body}"
        );
        // A second scrape works: connections are per-scrape, not persistent.
        let again = scrape(addr);
        assert!(again.contains("qsync_cache_hits_total 1"), "second scrape failed:\n{again}");
    }
}
