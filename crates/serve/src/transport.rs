//! Readiness-based TCP transport: connections multiplexed across one or more
//! epoll reactor threads.
//!
//! The previous transport spawned a thread (and a private scheduler!) per
//! connection, so a thousand idle clients pinned a thousand stacks and
//! fairness stopped at the connection boundary. Each reactor holds its
//! connections on a single [`polling::Poller`]:
//!
//! * **Nonblocking accept** — the listener is registered like any other
//!   source; an accept burst is drained in one readiness event.
//! * **Incremental JSONL framing** — per-connection read buffers accumulate
//!   bytes until `\n`; partial lines survive any read-boundary split, and a
//!   line exceeding [`TransportConfig::max_line_bytes`] draws an `Error`
//!   reply and a connection close instead of unbounded buffering.
//! * **Write-side backpressure** — replies land in a per-connection
//!   [`Outbox`]; the reactor flushes opportunistically and registers
//!   **write interest only while bytes remain** (level-triggered epoll).
//!   When a slow reader lets the buffered bytes exceed
//!   [`TransportConfig::max_buffered_bytes`], the reactor drops the
//!   connection's *read* interest until the backlog drains below half.
//! * **Graceful shutdown** — a [`ShutdownSignal`] stops the accept loop,
//!   stops reading new commands, and drains outstanding replies for up to
//!   [`TransportConfig::drain_timeout`] before closing.
//!
//! Commands are parsed on the reactor thread and dispatched into the shared
//! [`ServeCore`](crate::server): planning runs on the worker pool, deltas on
//! the executor threads — the reactor itself never blocks on either, so a
//! pending delta barrier cannot stall unrelated connections (nor `Stats`
//! reads, which answer inline from counters).
//!
//! **Multi-reactor scale-out.** With [`TransportConfig::reactors`] > 1 the
//! transport shards across N reactor threads by **accept-and-hand-off**:
//! reactor 0 owns the listener and round-robins each accepted stream to a
//! peer reactor's inbound queue (waking it through its poller). Connection
//! state — read buffers, outboxes, write-backpressure, interest — stays
//! strictly reactor-local; exactly one shared `ServeCore` (scheduler, plan
//! engine, delta coalescer, event fan-out) serves all reactors, and each
//! reactor drains its own connections on shutdown.
//!
//! **Virtual time and simulation.** Every time the reactor consults —
//! the accept-backoff deadline and the shutdown drain budget — is read from
//! an injected [`Clock`], and the socket layer is abstracted behind
//! [`NetStream`]/[`NetListener`]/[`NetPoller`] enums whose second variants
//! are in-memory simulated connections ([`crate::sim`]). The `qsync-lab`
//! harness drives the *same* reactor code, step by step, on a
//! [`ManualClock`](qsync_clock::ManualClock) with scripted faults.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use polling::{Event, Interest, Poller};

use qsync_api::WireProto;
use qsync_clock::Clock;

use crate::server::{PlanServer, ServeCore, ServerReply, Sink};
use crate::sim::{SimNet, SimStream};

/// Raise the process's soft `RLIMIT_NOFILE` toward `want` (capped at the
/// hard limit) and return the resulting soft limit. A reactor is bounded by
/// file descriptors, not threads, so a many-connection server (or test)
/// should lift the often-1024 default soft limit before serving.
#[cfg(target_os = "linux")]
pub fn ensure_fd_limit(want: u64) -> io::Result<u64> {
    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    extern "C" {
        fn getrlimit(resource: std::os::raw::c_int, rlim: *mut RLimit) -> std::os::raw::c_int;
        fn setrlimit(resource: std::os::raw::c_int, rlim: *const RLimit) -> std::os::raw::c_int;
    }
    const RLIMIT_NOFILE: std::os::raw::c_int = 7;

    let mut limit = RLimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if limit.rlim_cur >= want {
        return Ok(limit.rlim_cur);
    }
    let target = want.min(limit.rlim_max);
    let raised = RLimit { rlim_cur: target, rlim_max: limit.rlim_max };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

/// Unsupported off Linux (`RLIMIT_NOFILE`'s value is per-OS, and the
/// reactor itself is Linux-only anyway).
#[cfg(not(target_os = "linux"))]
pub fn ensure_fd_limit(_want: u64) -> io::Result<u64> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "ensure_fd_limit is Linux-only"))
}

/// Tuning of the reactor transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Hard cap on one JSONL command line. A connection that exceeds it
    /// (i.e. streams this many bytes without a newline) gets an `Error`
    /// reply and is closed — wire input must not buffer unboundedly.
    pub max_line_bytes: usize,
    /// Soft cap on a connection's un-flushed reply bytes. Beyond it the
    /// reactor stops *reading* from that connection (backpressure) until the
    /// backlog drains below half.
    pub max_buffered_bytes: usize,
    /// How long a graceful shutdown waits for in-flight replies to flush
    /// before force-closing connections.
    pub drain_timeout: Duration,
    /// Cap on a *subscriber's* un-flushed bytes beyond which broadcast
    /// events are dropped (counted per subscriber; see the `Resync`
    /// command) rather than buffered without bound. Replies to the
    /// subscriber's own commands are never dropped — this cap gates only
    /// the event fan-out.
    pub event_outbox_cap: usize,
    /// How long accepts stay paused after a resource-exhaustion accept
    /// error (e.g. `EMFILE`): the backlog keeps the listener readable, so
    /// without a pause the reactor would spin hot on the failing `accept`.
    /// Configurable via `--accept-backoff-ms` on the `qsync-serve` binary.
    pub accept_backoff: Duration,
    /// Number of reactor threads the transport shards connections across
    /// (min 1). Reactor 0 owns the listener and hands accepted connections
    /// off per [`handoff`](TransportConfig::handoff); all reactors share one
    /// `ServeCore`. The `qsync-serve` binary defaults `--reactors` to the
    /// available cores.
    pub reactors: usize,
    /// How the acceptor picks the reactor an accepted connection is handed
    /// to. Configurable via `--handoff` on the `qsync-serve` binary.
    pub handoff: HandoffPolicy,
    /// Token-bucket overload protection, enforced per command at admission
    /// (see [`RateLimitConfig`](crate::server::RateLimitConfig)). Default:
    /// no limits.
    pub rate_limit: crate::server::RateLimitConfig,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_line_bytes: 1 << 20,
            max_buffered_bytes: 8 << 20,
            drain_timeout: Duration::from_secs(10),
            event_outbox_cap: 4 << 20,
            accept_backoff: Duration::from_millis(250),
            reactors: 1,
            handoff: HandoffPolicy::default(),
            rate_limit: crate::server::RateLimitConfig::default(),
        }
    }
}

/// Acceptor-to-reactor connection placement (multi-reactor servers; a
/// single-reactor server keeps every connection regardless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HandoffPolicy {
    /// Hand each accepted connection to the reactor currently carrying the
    /// fewest connections — registered (its `reactor_conns` gauge) plus
    /// still queued in its inbound hand-off buffer — lowest index on ties.
    /// From an empty ring this deals like round-robin, but after churn
    /// (long-lived connections piling onto some reactors while others
    /// drain) new connections refill the emptiest reactor first.
    #[default]
    LeastLoaded,
    /// Deal connections across the ring in strict index order, ignoring
    /// load. Deterministic placement, useful as a baseline.
    RoundRobin,
}

impl std::str::FromStr for HandoffPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "least-loaded" => Ok(HandoffPolicy::LeastLoaded),
            "round-robin" => Ok(HandoffPolicy::RoundRobin),
            other => Err(format!("unknown handoff policy `{other}` (expected `least-loaded` or `round-robin`)")),
        }
    }
}

/// Cooperative stop flag for [`PlanServer::serve_listener`]. Clone it before
/// starting the server; [`shutdown`](ShutdownSignal::shutdown) from any
/// thread makes the reactor stop accepting, drain and return.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug, Default)]
struct ShutdownInner {
    stop: AtomicBool,
    /// One waker per attached reactor — a shutdown must wake every reactor
    /// thread, not just the acceptor.
    wakers: Mutex<Vec<Arc<ReactorShared>>>,
}

impl ShutdownSignal {
    /// A fresh, un-fired signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for shared in self.inner.wakers.lock().expect("shutdown waker poisoned").iter() {
            let _ = shared.poller.notify();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    fn attach(&self, shared: &Arc<ReactorShared>) {
        self.inner.wakers.lock().expect("shutdown waker poisoned").push(Arc::clone(shared));
    }
}

/// A connection stream: a real socket or an in-memory simulated pipe. The
/// reactor reads/writes through this enum so the whole transport runs
/// unchanged against either backend.
pub(crate) enum NetStream {
    /// A real TCP socket.
    Tcp(TcpStream),
    /// The server end of a simulated connection (see [`crate::sim`]).
    Sim(SimStream),
}

impl std::fmt::Debug for NetStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NetStream::Tcp(_) => "NetStream::Tcp",
            NetStream::Sim(_) => "NetStream::Sim",
        })
    }
}

impl NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Sim(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Sim(s) => s.write(buf),
        }
    }

    fn prepare(&self) -> io::Result<()> {
        if let NetStream::Tcp(s) = self {
            s.set_nonblocking(true)?;
            // Replies are whole JSON lines; don't let Nagle sit on them.
            let _ = s.set_nodelay(true);
        }
        Ok(())
    }
}

/// A listening endpoint: a bound TCP listener or the simulated accept queue.
pub(crate) enum NetListener {
    /// A real TCP listener.
    Tcp(TcpListener),
    /// The simulated accept backlog (connections and scripted accept
    /// errors queued by the lab driver).
    Sim(Arc<SimNet>),
}

impl NetListener {
    fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => l.accept().map(|(stream, _peer)| NetStream::Tcp(stream)),
            NetListener::Sim(net) => net.accept(),
        }
    }
}

/// Readiness source: the real epoll-backed [`Poller`] or the simulated
/// network's synchronous readiness computation.
#[derive(Debug)]
pub(crate) enum NetPoller {
    /// epoll (vendored `polling` crate).
    Tcp(Poller),
    /// In-memory readiness — [`SimNet`] computes ready events from pipe
    /// state and registered interest, deterministically ordered by key.
    Sim(Arc<SimNet>),
}

impl NetPoller {
    fn notify(&self) -> io::Result<()> {
        match self {
            NetPoller::Tcp(p) => p.notify(),
            // The sim reactor is driven synchronously by the lab; there is
            // no blocked wait to interrupt.
            NetPoller::Sim(_) => Ok(()),
        }
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        match self {
            NetPoller::Tcp(p) => p.wait(events, timeout),
            NetPoller::Sim(net) => {
                net.poll_ready(events);
                Ok(events.len())
            }
        }
    }

    fn add_listener(&self, listener: &NetListener, key: usize, interest: Interest) -> io::Result<()> {
        match (self, listener) {
            (NetPoller::Tcp(p), NetListener::Tcp(l)) => p.add(l, key, interest),
            (NetPoller::Sim(net), NetListener::Sim(_)) => {
                net.set_listener_interest(interest);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidInput, "mixed net backends")),
        }
    }

    fn modify_listener(&self, listener: &NetListener, key: usize, interest: Interest) -> io::Result<()> {
        self.add_listener(listener, key, interest)
    }

    fn delete_listener(&self, listener: &NetListener) -> io::Result<()> {
        match (self, listener) {
            (NetPoller::Tcp(p), NetListener::Tcp(l)) => p.delete(l),
            (NetPoller::Sim(net), NetListener::Sim(_)) => {
                net.set_listener_interest(Interest::NONE);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidInput, "mixed net backends")),
        }
    }

    fn add_stream(&self, stream: &NetStream, key: usize, interest: Interest) -> io::Result<()> {
        match (self, stream) {
            (NetPoller::Tcp(p), NetStream::Tcp(s)) => p.add(s, key, interest),
            (NetPoller::Sim(net), NetStream::Sim(s)) => {
                net.register_conn(key, s.pipe(), interest);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidInput, "mixed net backends")),
        }
    }

    fn modify_stream(&self, stream: &NetStream, key: usize, interest: Interest) -> io::Result<()> {
        match (self, stream) {
            (NetPoller::Tcp(p), NetStream::Tcp(s)) => p.modify(s, key, interest),
            (NetPoller::Sim(net), NetStream::Sim(_)) => {
                net.set_conn_interest(key, interest);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidInput, "mixed net backends")),
        }
    }

    fn delete_stream(&self, stream: &NetStream, key: usize) -> io::Result<()> {
        match (self, stream) {
            (NetPoller::Tcp(p), NetStream::Tcp(s)) => p.delete(s),
            (NetPoller::Sim(net), NetStream::Sim(_)) => {
                net.deregister_conn(key);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidInput, "mixed net backends")),
        }
    }
}

/// State shared between a reactor and the reply producers (workers, delta
/// executors) plus its peer reactors: the poller, the list of connections
/// with fresh output, and the inbound queue of accepted streams handed off
/// by the acceptor reactor.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    poller: NetPoller,
    dirty: Mutex<Vec<usize>>,
    /// Accepted streams handed off by the acceptor, awaiting registration
    /// on this reactor's poller (drained at the top of each pass).
    inbound: Mutex<Vec<NetStream>>,
}

impl ReactorShared {
    /// Queue an accepted stream for this reactor and wake it.
    fn hand_off(&self, stream: NetStream) {
        self.inbound.lock().expect("inbound queue poisoned").push(stream);
        let _ = self.poller.notify();
    }
}

/// A connection's reply buffer, filled by worker threads and flushed by the
/// reactor under write readiness.
#[derive(Debug)]
pub(crate) struct Outbox {
    key: usize,
    buf: Mutex<OutboxBuf>,
    shared: Arc<ReactorShared>,
}

#[derive(Debug, Default)]
struct OutboxBuf {
    bytes: Vec<u8>,
    closed: bool,
}

impl Outbox {
    /// Queue one reply line and wake the reactor to flush it. Replies to a
    /// connection that already closed are dropped silently.
    pub(crate) fn push_line(&self, line: &str) {
        {
            let mut buf = self.buf.lock().expect("outbox poisoned");
            if buf.closed {
                return;
            }
            buf.bytes.extend_from_slice(line.as_bytes());
            buf.bytes.push(b'\n');
        }
        self.mark_dirty();
    }

    /// Flag this connection for the reactor's next flush/closability pass.
    pub(crate) fn mark_dirty(&self) {
        self.shared.dirty.lock().expect("dirty list poisoned").push(self.key);
        let _ = self.shared.poller.notify();
    }

    /// Move all buffered bytes into `into`.
    fn take_into(&self, into: &mut Vec<u8>) {
        let mut buf = self.buf.lock().expect("outbox poisoned");
        into.extend_from_slice(&buf.bytes);
        buf.bytes.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.lock().expect("outbox poisoned").bytes.len()
    }

    fn close(&self) {
        let mut buf = self.buf.lock().expect("outbox poisoned");
        buf.closed = true;
        buf.bytes.clear();
    }
}

/// Reactor key of the listener; connections start above it.
pub(crate) const LISTENER_KEY: usize = 0;

struct Conn {
    stream: NetStream,
    state: Arc<crate::server::ConnState>,
    outbox: Arc<Outbox>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    interest: Interest,
    /// Peer closed its write side (or the server decided to stop reading):
    /// finish outstanding replies, flush, then close.
    peer_eof: bool,
    /// Read interest withdrawn because the reply backlog passed the cap.
    paused: bool,
    /// Hard I/O error: discard without flushing.
    dropped: bool,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos + self.outbox.len()
    }

    fn closable(&self) -> bool {
        self.dropped
            || (self.peer_eof
                && self.state.pending_count() == 0
                && self.write_pos == self.write_buf.len()
                && self.outbox.len() == 0)
    }
}

/// Bytes consumed from one connection per readiness pass. Level-triggered
/// epoll re-delivers the event while bytes remain, so a flooding connection
/// is revisited only after every other ready connection (and the
/// flush/backpressure pass) had its turn — one client can neither starve
/// the reactor nor buffer unboundedly in a single pass.
const READ_BUDGET: usize = 256 * 1024;

pub(crate) struct Reactor {
    core: Arc<ServeCore>,
    shared: Arc<ReactorShared>,
    /// The accept source. `None` on peer reactors (index > 0 of a
    /// multi-reactor server), which only receive handed-off connections.
    listener: Option<NetListener>,
    /// This reactor's index (0 = the acceptor).
    reactor_id: usize,
    /// Hand-off ring of every reactor's shared state, in reactor-index
    /// order, including this reactor's own. Non-empty only on the acceptor
    /// of a multi-reactor server.
    peers: Vec<Arc<ReactorShared>>,
    /// `qsync_transport_reactor_conns{reactor="<i>"}` for each ring slot:
    /// the load signal the least-loaded hand-off reads. Resolved once in
    /// [`set_peers`](Self::set_peers); index-aligned with `peers`.
    peer_conns: Vec<Arc<qsync_obs::Gauge>>,
    /// Round-robin cursor into `peers`.
    rr_next: usize,
    /// `qsync_transport_reactor_conns{reactor="<id>"}`.
    reactor_conns: Arc<qsync_obs::Gauge>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    config: TransportConfig,
    shutdown: ShutdownSignal,
    clock: Arc<dyn Clock>,
    /// While set (clock milliseconds), listener interest is withdrawn;
    /// accepts resume at the deadline.
    accept_paused_until: Option<u64>,
    /// Set by [`begin_drain`](Self::begin_drain): the clock-ms deadline past
    /// which leftover connections are force-closed.
    drain_deadline: Option<u64>,
}

impl Reactor {
    fn new(
        core: Arc<ServeCore>,
        listener: TcpListener,
        shutdown: ShutdownSignal,
        config: TransportConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        Self::with_backend(
            core,
            Some(NetListener::Tcp(listener)),
            NetPoller::Tcp(Poller::new()?),
            0,
            shutdown,
            config,
            clock,
        )
    }

    /// A listenerless peer reactor (TCP backend): serves only connections
    /// the acceptor hands off.
    fn new_peer(
        core: Arc<ServeCore>,
        reactor_id: usize,
        shutdown: ShutdownSignal,
        config: TransportConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        Self::with_backend(
            core,
            None,
            NetPoller::Tcp(Poller::new()?),
            reactor_id,
            shutdown,
            config,
            clock,
        )
    }

    /// A reactor over the simulated network — same machinery, in-memory
    /// connections, virtual time. Driven step-by-step by [`crate::sim`].
    pub(crate) fn new_sim(
        core: Arc<ServeCore>,
        net: Arc<SimNet>,
        shutdown: ShutdownSignal,
        config: TransportConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        Self::with_backend(
            core,
            Some(NetListener::Sim(Arc::clone(&net))),
            NetPoller::Sim(net),
            0,
            shutdown,
            config,
            clock,
        )
    }

    /// A listenerless peer reactor over its own [`SimNet`] — the simulated
    /// twin of [`new_peer`](Self::new_peer); `net` carries only this
    /// reactor's registered connections, never an accept backlog.
    pub(crate) fn new_sim_peer(
        core: Arc<ServeCore>,
        reactor_id: usize,
        net: Arc<SimNet>,
        shutdown: ShutdownSignal,
        config: TransportConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        Self::with_backend(core, None, NetPoller::Sim(net), reactor_id, shutdown, config, clock)
    }

    fn with_backend(
        core: Arc<ServeCore>,
        listener: Option<NetListener>,
        poller: NetPoller,
        reactor_id: usize,
        shutdown: ShutdownSignal,
        config: TransportConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        let shared = Arc::new(ReactorShared {
            poller,
            dirty: Mutex::new(Vec::new()),
            inbound: Mutex::new(Vec::new()),
        });
        shutdown.attach(&shared);
        if let Some(listener) = &listener {
            shared.poller.add_listener(listener, LISTENER_KEY, Interest::READ)?;
        }
        let reactor_conns = core.obs().reactor_conns(reactor_id);
        Ok(Reactor {
            core,
            shared,
            listener,
            reactor_id,
            peers: Vec::new(),
            peer_conns: Vec::new(),
            rr_next: 0,
            reactor_conns,
            conns: HashMap::new(),
            next_key: LISTENER_KEY + 1,
            config,
            shutdown,
            clock,
            accept_paused_until: None,
            drain_deadline: None,
        })
    }

    /// This reactor's shared state (for the acceptor's hand-off ring).
    pub(crate) fn shared(&self) -> Arc<ReactorShared> {
        Arc::clone(&self.shared)
    }

    /// Install the hand-off ring on the acceptor: every reactor's shared
    /// state in reactor-index order (including the acceptor's own, so the
    /// hand-off covers it too).
    pub(crate) fn set_peers(&mut self, peers: Vec<Arc<ReactorShared>>) {
        self.peer_conns = (0..peers.len()).map(|i| self.core.obs().reactor_conns(i)).collect();
        self.peers = peers;
    }

    /// The ring slot the next accepted connection goes to, per the
    /// configured [`HandoffPolicy`].
    fn pick_handoff_target(&mut self) -> usize {
        match self.config.handoff {
            HandoffPolicy::RoundRobin => {
                let target = self.rr_next % self.peers.len();
                self.rr_next = self.rr_next.wrapping_add(1);
                target
            }
            HandoffPolicy::LeastLoaded => {
                // A peer's load is what it carries plus what it has been
                // handed but not yet registered (the inbound queue drains
                // only on that reactor's next poll pass — without counting
                // it, a burst of accepts would all land on the same peer).
                let load = |i: usize| {
                    self.peer_conns[i].get().max(0) as usize
                        + self.peers[i].inbound.lock().expect("inbound queue poisoned").len()
                };
                (0..self.peers.len()).min_by_key(|&i| load(i)).unwrap_or(0)
            }
        }
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        while !self.shutdown.is_shutdown() {
            events.clear();
            // While accepts are backed off, wake at the deadline instead of
            // blocking indefinitely.
            let timeout = self.accept_paused_until.map(|until| {
                Duration::from_millis(until.saturating_sub(self.clock.now_ms()).max(1))
            });
            self.shared.poller.wait(&mut events, timeout)?;
            if self.shutdown.is_shutdown() {
                break;
            }
            self.drain_inbound();
            self.maybe_resume_accepts();
            let ready = std::mem::take(&mut events);
            self.process_events(&ready);
            events = ready;
            self.flush_dirty();
            self.reap();
        }
        self.drain_on_shutdown()
    }

    /// Handle one batch of readiness events.
    fn process_events(&mut self, events: &[Event]) {
        for event in events {
            if event.key == LISTENER_KEY && self.listener.is_some() {
                self.accept_ready();
            } else {
                if event.readable {
                    self.read_conn(event.key);
                }
                self.flush_conn(event.key);
            }
        }
    }

    /// One non-blocking reactor pass: poll readiness, process events, flush
    /// dirty outboxes, reap finished connections. Returns whether anything
    /// was ready — the sim driver loops this against the core's job pump
    /// until the whole system is quiescent.
    pub(crate) fn poll_step(&mut self) -> io::Result<bool> {
        let had_inbound = self.drain_inbound();
        let mut events: Vec<Event> = Vec::new();
        self.shared.poller.wait(&mut events, Some(Duration::ZERO))?;
        self.maybe_resume_accepts();
        let had_events = !events.is_empty();
        self.process_events(&events);
        let had_dirty = self.flush_dirty();
        self.reap();
        Ok(had_inbound || had_events || had_dirty)
    }

    /// Register every stream the acceptor handed off since the last pass.
    /// Returns whether any arrived.
    fn drain_inbound(&mut self) -> bool {
        let inbound =
            std::mem::take(&mut *self.shared.inbound.lock().expect("inbound queue poisoned"));
        let any = !inbound.is_empty();
        for stream in inbound {
            if let Err(e) = self.register(stream) {
                eprintln!(
                    "qsync-serve: reactor {}: failed to register handed-off connection: {e}",
                    self.reactor_id
                );
            }
        }
        any
    }

    /// Drain the accept backlog (level-triggered: one event may cover many
    /// queued connections). On a multi-reactor server the accepted stream is
    /// handed off across the reactor ring (which includes this reactor) per
    /// the configured [`HandoffPolicy`] — least-loaded by default.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok(stream) => {
                    if self.peers.len() > 1 {
                        let target = self.pick_handoff_target();
                        if !Arc::ptr_eq(&self.peers[target], &self.shared) {
                            self.core.obs().reactor_handoffs.inc();
                            self.peers[target].hand_off(stream);
                            continue;
                        }
                    }
                    if let Err(e) = self.register(stream) {
                        eprintln!("qsync-serve: failed to register connection: {e}");
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The peer reset before we got to it: just move on.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    // Resource exhaustion (EMFILE/ENFILE/ENOMEM): the
                    // backlog keeps the listener readable, so withdraw
                    // listener interest and retry after a pause instead of
                    // spinning hot on the failing accept.
                    self.core.obs().accept_pauses.inc();
                    self.core.obs().accept_paused.set(1);
                    eprintln!("qsync-serve: accept error: {e}; pausing accepts briefly");
                    if let Some(listener) = &self.listener {
                        let _ =
                            self.shared.poller.modify_listener(listener, LISTENER_KEY, Interest::NONE);
                    }
                    let backoff = self.config.accept_backoff.as_millis() as u64;
                    self.accept_paused_until = Some(self.clock.now_ms() + backoff);
                    break;
                }
            }
        }
    }

    /// Re-arm the listener once an accept backoff expires.
    fn maybe_resume_accepts(&mut self) {
        if self.accept_paused_until.is_none_or(|until| self.clock.now_ms() < until) {
            return;
        }
        let Some(listener) = &self.listener else { return };
        if self.shared.poller.modify_listener(listener, LISTENER_KEY, Interest::READ).is_ok() {
            self.accept_paused_until = None;
            self.core.obs().accept_paused.set(0);
        }
    }

    fn register(&mut self, stream: NetStream) -> io::Result<()> {
        stream.prepare()?;
        let key = self.next_key;
        self.next_key += 1;
        let outbox = Arc::new(Outbox {
            key,
            buf: Mutex::new(OutboxBuf::default()),
            shared: Arc::clone(&self.shared),
        });
        let state = self.core.register_conn(Sink::Outbox(Arc::clone(&outbox)));
        self.shared.poller.add_stream(&stream, key, Interest::READ)?;
        self.core.obs().accepts.inc();
        self.core.obs().conns_open.add(1);
        self.reactor_conns.add(1);
        self.conns.insert(
            key,
            Conn {
                stream,
                state,
                outbox,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                interest: Interest::READ,
                peer_eof: false,
                paused: false,
                dropped: false,
            },
        );
        Ok(())
    }

    /// Pull everything readable out of a connection, frame complete JSONL
    /// lines, and dispatch them into the core.
    fn read_conn(&mut self, key: usize) {
        let obs = Arc::clone(self.core.obs());
        let mut lines: Vec<String> = Vec::new();
        let mut oversized = false;
        let state = {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            if conn.paused || conn.peer_eof || conn.dropped {
                return;
            }
            let mut chunk = [0u8; 16 * 1024];
            let mut budget = READ_BUDGET;
            loop {
                if budget == 0 {
                    // Level-triggered: the remaining bytes re-deliver the
                    // event after other connections get their pass.
                    obs.read_budget_exhausted.inc();
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        // EOF terminates a trailing unterminated line, same
                        // as `BufRead::lines` on the blocking path.
                        if !conn.read_buf.is_empty() {
                            lines.push(String::from_utf8_lossy(&conn.read_buf).into_owned());
                            conn.read_buf.clear();
                        }
                        break;
                    }
                    Ok(n) => {
                        budget = budget.saturating_sub(n);
                        obs.bytes_in.add(n as u64);
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        let mut start = 0;
                        while let Some(offset) =
                            conn.read_buf[start..].iter().position(|&b| b == b'\n')
                        {
                            lines.push(
                                String::from_utf8_lossy(&conn.read_buf[start..start + offset])
                                    .into_owned(),
                            );
                            start += offset + 1;
                        }
                        conn.read_buf.drain(..start);
                        if conn.read_buf.len() > self.config.max_line_bytes {
                            oversized = true;
                            conn.peer_eof = true;
                            conn.read_buf.clear();
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dropped = true;
                        break;
                    }
                }
            }
            if conn.dropped {
                return;
            }
            Arc::clone(&conn.state)
        };
        for line in &lines {
            self.core.handle_line(&state, line);
        }
        if oversized {
            // Connection-level failure: no command (and so no wire form) was
            // ever parsed, so it renders in the legacy v0 shape.
            state.send(WireProto::V0, &ServerReply::Error {
                id: None,
                message: format!(
                    "input line exceeds {} bytes without a newline; closing connection",
                    self.config.max_line_bytes
                ),
            });
        }
    }

    /// Stage outbox bytes and write as much as the socket accepts, then
    /// recompute interest (write interest only while bytes remain, read
    /// interest unless EOF'd or backpressured).
    fn flush_conn(&mut self, key: usize) {
        let obs = Arc::clone(self.core.obs());
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.dropped {
            return;
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        conn.outbox.take_into(&mut conn.write_buf);
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dropped = true;
                    return;
                }
                Ok(n) => {
                    obs.bytes_out.add(n as u64);
                    conn.write_pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dropped = true;
                    return;
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        let backlog = conn.unflushed();
        if conn.paused {
            if backlog <= self.config.max_buffered_bytes / 2 {
                conn.paused = false;
                obs.backpressure_resumes.inc();
            }
        } else if backlog > self.config.max_buffered_bytes {
            conn.paused = true;
            obs.backpressure_pauses.inc();
        }
        let interest = Interest {
            readable: !conn.peer_eof && !conn.paused,
            writable: backlog > 0,
        };
        if interest != conn.interest {
            match self.shared.poller.modify_stream(&conn.stream, key, interest) {
                Ok(()) => conn.interest = interest,
                Err(_) => conn.dropped = true,
            }
        }
    }

    /// Flush every connection a worker flagged since the last pass. Returns
    /// whether any connection was flushed.
    fn flush_dirty(&mut self) -> bool {
        let mut any = false;
        loop {
            let mut dirty =
                std::mem::take(&mut *self.shared.dirty.lock().expect("dirty list poisoned"));
            if dirty.is_empty() {
                return any;
            }
            any = true;
            dirty.sort_unstable();
            dirty.dedup();
            for key in dirty {
                self.flush_conn(key);
            }
        }
    }

    /// Close every connection that is finished (EOF seen, all replies
    /// delivered) or broken. Keys are visited in sorted order so close-time
    /// side effects (ticket cancellation, subscriber removal) are
    /// deterministic under simulation.
    fn reap(&mut self) {
        let mut done: Vec<usize> =
            self.conns.iter().filter(|(_, c)| c.closable()).map(|(k, _)| *k).collect();
        done.sort_unstable();
        for key in done {
            self.close_conn(key);
        }
    }

    fn close_conn(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            conn.outbox.close();
            self.core.obs().conns_open.add(-1);
            self.reactor_conns.add(-1);
            let _ = self.shared.poller.delete_stream(&conn.stream, key);
            // A broken connection may still have plans queued; nobody can
            // receive them, so free the scheduler slots (and end any event
            // subscription).
            self.core.drop_conn(conn.state.id());
        }
    }

    /// Start a graceful drain: stop accepting, EOF every connection (no new
    /// commands), flush what is already writable, and arm the drain
    /// deadline. Returns that deadline in clock milliseconds.
    pub(crate) fn begin_drain(&mut self) -> u64 {
        if let Some(listener) = &self.listener {
            let _ = self.shared.poller.delete_listener(listener);
        }
        // Handed-off streams that never got registered are simply dropped
        // (which closes them): they carry no pending replies.
        self.shared.inbound.lock().expect("inbound queue poisoned").clear();
        let mut keys: Vec<usize> = self.conns.keys().copied().collect();
        keys.sort_unstable();
        for key in &keys {
            if let Some(conn) = self.conns.get_mut(key) {
                conn.peer_eof = true;
            }
            self.flush_conn(*key);
        }
        self.reap();
        let deadline = self.clock.now_ms() + self.config.drain_timeout.as_millis() as u64;
        self.drain_deadline = Some(deadline);
        deadline
    }

    /// Whether the drain phase still has work and budget: connections remain
    /// and the deadline (armed by [`begin_drain`](Self::begin_drain)) has
    /// not passed.
    pub(crate) fn drain_pending(&self) -> bool {
        !self.conns.is_empty()
            && self.drain_deadline.is_some_and(|deadline| self.clock.now_ms() < deadline)
    }

    /// Force-close whatever connections the drain budget left behind.
    pub(crate) fn finish_drain(&mut self) {
        let mut leftover: Vec<usize> = self.conns.keys().copied().collect();
        leftover.sort_unstable();
        for key in leftover {
            self.close_conn(key);
        }
    }

    /// Graceful shutdown: stop accepting and reading, give in-flight work up
    /// to `drain_timeout` to reply and flush, then close everything.
    fn drain_on_shutdown(&mut self) -> io::Result<()> {
        self.begin_drain();
        let mut events: Vec<Event> = Vec::new();
        while self.drain_pending() {
            events.clear();
            self.shared.poller.wait(&mut events, Some(Duration::from_millis(50)))?;
            let ready = std::mem::take(&mut events);
            for event in &ready {
                if event.key != LISTENER_KEY {
                    self.flush_conn(event.key);
                }
            }
            events = ready;
            self.flush_dirty();
            self.reap();
        }
        self.finish_drain();
        Ok(())
    }
}

impl PlanServer {
    /// Serve TCP connections on `addr` forever: every connection is
    /// multiplexed onto one epoll reactor and shares one scheduler, plan
    /// engine and worker pool.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("qsync-serve: listening on {}", listener.local_addr()?);
        self.serve_listener(listener, ShutdownSignal::new())
    }

    /// Serve an already-bound listener until `shutdown` fires (the testable
    /// entry point behind [`serve_tcp`](Self::serve_tcp)). With
    /// `TransportConfig::reactors` > 1, reactor 0 (this thread) owns the
    /// listener and hands accepted connections off round-robin to peer
    /// reactor threads; all reactors share one `ServeCore`. On shutdown
    /// every reactor stops, drains its own connections within the
    /// transport's `drain_timeout`, then the shared core stops.
    pub fn serve_listener(
        &self,
        listener: TcpListener,
        shutdown: ShutdownSignal,
    ) -> io::Result<()> {
        let config = self.transport_config().clone();
        let handle = ServeCore::start(
            Arc::clone(self.engine()),
            self.workers(),
            self.sched_config().clone(),
            config.event_outbox_cap,
            self.clock(),
        );
        handle.core.set_rate_limit(config.rate_limit);
        self.attach_store(&handle.core);
        let n_reactors = config.reactors.max(1);
        let result = (|| -> io::Result<()> {
            let mut acceptor = Reactor::new(
                Arc::clone(&handle.core),
                listener,
                shutdown.clone(),
                config.clone(),
                self.clock(),
            )?;
            let mut peers: Vec<Reactor> = (1..n_reactors)
                .map(|id| {
                    Reactor::new_peer(
                        Arc::clone(&handle.core),
                        id,
                        shutdown.clone(),
                        config.clone(),
                        self.clock(),
                    )
                })
                .collect::<io::Result<_>>()?;
            let mut ring = vec![acceptor.shared()];
            ring.extend(peers.iter().map(|r| r.shared()));
            acceptor.set_peers(ring);
            std::thread::scope(|scope| {
                let joins: Vec<_> = peers
                    .iter_mut()
                    .map(|reactor| scope.spawn(move || reactor.run()))
                    .collect();
                let accept_result = acceptor.run();
                // The acceptor only returns once shutdown fired (or on a
                // poller error, in which case take the server down with it).
                shutdown.shutdown();
                let mut result = accept_result;
                for join in joins {
                    let peer_result = join.join().expect("reactor thread panicked");
                    if result.is_ok() {
                        result = peer_result;
                    }
                }
                result
            })
        })();
        handle.stop();
        result
    }
}
