//! Readiness-based TCP transport: every connection multiplexed on one epoll
//! reactor thread.
//!
//! The previous transport spawned a thread (and a private scheduler!) per
//! connection, so a thousand idle clients pinned a thousand stacks and
//! fairness stopped at the connection boundary. This reactor holds all
//! connections on a single [`polling::Poller`]:
//!
//! * **Nonblocking accept** — the listener is registered like any other
//!   source; an accept burst is drained in one readiness event.
//! * **Incremental JSONL framing** — per-connection read buffers accumulate
//!   bytes until `\n`; partial lines survive any read-boundary split, and a
//!   line exceeding [`TransportConfig::max_line_bytes`] draws an `Error`
//!   reply and a connection close instead of unbounded buffering.
//! * **Write-side backpressure** — replies land in a per-connection
//!   [`Outbox`]; the reactor flushes opportunistically and registers
//!   **write interest only while bytes remain** (level-triggered epoll).
//!   When a slow reader lets the buffered bytes exceed
//!   [`TransportConfig::max_buffered_bytes`], the reactor drops the
//!   connection's *read* interest until the backlog drains below half.
//! * **Graceful shutdown** — a [`ShutdownSignal`] stops the accept loop,
//!   stops reading new commands, and drains outstanding replies for up to
//!   [`TransportConfig::drain_timeout`] before closing.
//!
//! Commands are parsed on the reactor thread and dispatched into the shared
//! [`ServeCore`](crate::server): planning runs on the worker pool, deltas on
//! the executor threads — the reactor itself never blocks on either, so a
//! pending delta barrier cannot stall unrelated connections (nor `Stats`
//! reads, which answer inline from counters).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use polling::{Event, Interest, Poller};

use qsync_api::WireProto;

use crate::server::{PlanServer, ServeCore, ServerReply, Sink};

/// Raise the process's soft `RLIMIT_NOFILE` toward `want` (capped at the
/// hard limit) and return the resulting soft limit. A reactor is bounded by
/// file descriptors, not threads, so a many-connection server (or test)
/// should lift the often-1024 default soft limit before serving.
#[cfg(target_os = "linux")]
pub fn ensure_fd_limit(want: u64) -> io::Result<u64> {
    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    extern "C" {
        fn getrlimit(resource: std::os::raw::c_int, rlim: *mut RLimit) -> std::os::raw::c_int;
        fn setrlimit(resource: std::os::raw::c_int, rlim: *const RLimit) -> std::os::raw::c_int;
    }
    const RLIMIT_NOFILE: std::os::raw::c_int = 7;

    let mut limit = RLimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if limit.rlim_cur >= want {
        return Ok(limit.rlim_cur);
    }
    let target = want.min(limit.rlim_max);
    let raised = RLimit { rlim_cur: target, rlim_max: limit.rlim_max };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

/// Unsupported off Linux (`RLIMIT_NOFILE`'s value is per-OS, and the
/// reactor itself is Linux-only anyway).
#[cfg(not(target_os = "linux"))]
pub fn ensure_fd_limit(_want: u64) -> io::Result<u64> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "ensure_fd_limit is Linux-only"))
}

/// Tuning of the reactor transport.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Hard cap on one JSONL command line. A connection that exceeds it
    /// (i.e. streams this many bytes without a newline) gets an `Error`
    /// reply and is closed — wire input must not buffer unboundedly.
    pub max_line_bytes: usize,
    /// Soft cap on a connection's un-flushed reply bytes. Beyond it the
    /// reactor stops *reading* from that connection (backpressure) until the
    /// backlog drains below half.
    pub max_buffered_bytes: usize,
    /// How long a graceful shutdown waits for in-flight replies to flush
    /// before force-closing connections.
    pub drain_timeout: Duration,
    /// Cap on a *subscriber's* un-flushed bytes beyond which broadcast
    /// events are dropped (counted per subscriber; see the `Resync`
    /// command) rather than buffered without bound. Replies to the
    /// subscriber's own commands are never dropped — this cap gates only
    /// the event fan-out.
    pub event_outbox_cap: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_line_bytes: 1 << 20,
            max_buffered_bytes: 8 << 20,
            drain_timeout: Duration::from_secs(10),
            event_outbox_cap: 4 << 20,
        }
    }
}

/// Cooperative stop flag for [`PlanServer::serve_listener`]. Clone it before
/// starting the server; [`shutdown`](ShutdownSignal::shutdown) from any
/// thread makes the reactor stop accepting, drain and return.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug, Default)]
struct ShutdownInner {
    stop: AtomicBool,
    waker: Mutex<Option<Arc<ReactorShared>>>,
}

impl ShutdownSignal {
    /// A fresh, un-fired signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(shared) = self.inner.waker.lock().expect("shutdown waker poisoned").as_ref() {
            let _ = shared.poller.notify();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    fn attach(&self, shared: &Arc<ReactorShared>) {
        *self.inner.waker.lock().expect("shutdown waker poisoned") = Some(Arc::clone(shared));
    }
}

/// State shared between the reactor and the reply producers (workers, delta
/// executors): the poller plus the list of connections with fresh output.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    poller: Poller,
    dirty: Mutex<Vec<usize>>,
}

/// A connection's reply buffer, filled by worker threads and flushed by the
/// reactor under write readiness.
#[derive(Debug)]
pub(crate) struct Outbox {
    key: usize,
    buf: Mutex<OutboxBuf>,
    shared: Arc<ReactorShared>,
}

#[derive(Debug, Default)]
struct OutboxBuf {
    bytes: Vec<u8>,
    closed: bool,
}

impl Outbox {
    /// Queue one reply line and wake the reactor to flush it. Replies to a
    /// connection that already closed are dropped silently.
    pub(crate) fn push_line(&self, line: &str) {
        {
            let mut buf = self.buf.lock().expect("outbox poisoned");
            if buf.closed {
                return;
            }
            buf.bytes.extend_from_slice(line.as_bytes());
            buf.bytes.push(b'\n');
        }
        self.mark_dirty();
    }

    /// Flag this connection for the reactor's next flush/closability pass.
    pub(crate) fn mark_dirty(&self) {
        self.shared.dirty.lock().expect("dirty list poisoned").push(self.key);
        let _ = self.shared.poller.notify();
    }

    /// Move all buffered bytes into `into`.
    fn take_into(&self, into: &mut Vec<u8>) {
        let mut buf = self.buf.lock().expect("outbox poisoned");
        into.extend_from_slice(&buf.bytes);
        buf.bytes.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.lock().expect("outbox poisoned").bytes.len()
    }

    fn close(&self) {
        let mut buf = self.buf.lock().expect("outbox poisoned");
        buf.closed = true;
        buf.bytes.clear();
    }
}

/// Reactor key of the listener; connections start above it.
const LISTENER_KEY: usize = 0;

struct Conn {
    stream: TcpStream,
    state: Arc<crate::server::ConnState>,
    outbox: Arc<Outbox>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    interest: Interest,
    /// Peer closed its write side (or the server decided to stop reading):
    /// finish outstanding replies, flush, then close.
    peer_eof: bool,
    /// Read interest withdrawn because the reply backlog passed the cap.
    paused: bool,
    /// Hard I/O error: discard without flushing.
    dropped: bool,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos + self.outbox.len()
    }

    fn closable(&self) -> bool {
        self.dropped
            || (self.peer_eof
                && self.state.pending_count() == 0
                && self.write_pos == self.write_buf.len()
                && self.outbox.len() == 0)
    }
}

/// Bytes consumed from one connection per readiness pass. Level-triggered
/// epoll re-delivers the event while bytes remain, so a flooding connection
/// is revisited only after every other ready connection (and the
/// flush/backpressure pass) had its turn — one client can neither starve
/// the reactor nor buffer unboundedly in a single pass.
const READ_BUDGET: usize = 256 * 1024;

/// How long accepts stay paused after a resource-exhaustion accept error
/// (e.g. `EMFILE`): the backlog keeps the listener readable, so without a
/// pause the reactor would spin hot on the failing `accept`.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(250);

struct Reactor {
    core: Arc<ServeCore>,
    shared: Arc<ReactorShared>,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    config: TransportConfig,
    shutdown: ShutdownSignal,
    /// While set, listener interest is withdrawn; accepts resume at the
    /// deadline.
    accept_paused_until: Option<Instant>,
}

impl Reactor {
    fn new(
        core: Arc<ServeCore>,
        listener: TcpListener,
        shutdown: ShutdownSignal,
        config: TransportConfig,
    ) -> io::Result<Reactor> {
        let shared = Arc::new(ReactorShared { poller: Poller::new()?, dirty: Mutex::new(Vec::new()) });
        shutdown.attach(&shared);
        listener.set_nonblocking(true)?;
        shared.poller.add(&listener, LISTENER_KEY, Interest::READ)?;
        Ok(Reactor {
            core,
            shared,
            listener,
            conns: HashMap::new(),
            next_key: LISTENER_KEY + 1,
            config,
            shutdown,
            accept_paused_until: None,
        })
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        while !self.shutdown.is_shutdown() {
            events.clear();
            // While accepts are backed off, wake at the deadline instead of
            // blocking indefinitely.
            let timeout = self.accept_paused_until.map(|until| {
                until.saturating_duration_since(Instant::now()).max(Duration::from_millis(1))
            });
            self.shared.poller.wait(&mut events, timeout)?;
            if self.shutdown.is_shutdown() {
                break;
            }
            self.maybe_resume_accepts();
            let ready = std::mem::take(&mut events);
            for event in &ready {
                if event.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    if event.readable {
                        self.read_conn(event.key);
                    }
                    self.flush_conn(event.key);
                }
            }
            events = ready;
            self.flush_dirty();
            self.reap();
        }
        self.drain_on_shutdown()
    }

    /// Drain the accept backlog (level-triggered: one event may cover many
    /// queued connections).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Err(e) = self.register(stream) {
                        eprintln!("qsync-serve: failed to register connection: {e}");
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The peer reset before we got to it: just move on.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    // Resource exhaustion (EMFILE/ENFILE/ENOMEM): the
                    // backlog keeps the listener readable, so withdraw
                    // listener interest and retry after a pause instead of
                    // spinning hot on the failing accept.
                    self.core.obs().accept_pauses.inc();
                    eprintln!("qsync-serve: accept error: {e}; pausing accepts briefly");
                    let _ =
                        self.shared.poller.modify(&self.listener, LISTENER_KEY, Interest::NONE);
                    self.accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    /// Re-arm the listener once an accept backoff expires.
    fn maybe_resume_accepts(&mut self) {
        if self.accept_paused_until.is_some_and(|until| Instant::now() >= until)
            && self
                .shared
                .poller
                .modify(&self.listener, LISTENER_KEY, Interest::READ)
                .is_ok()
        {
            self.accept_paused_until = None;
        }
    }

    fn register(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        // Replies are whole JSON lines; don't let Nagle sit on them.
        let _ = stream.set_nodelay(true);
        let key = self.next_key;
        self.next_key += 1;
        let outbox = Arc::new(Outbox {
            key,
            buf: Mutex::new(OutboxBuf::default()),
            shared: Arc::clone(&self.shared),
        });
        let state = self.core.register_conn(Sink::Outbox(Arc::clone(&outbox)));
        self.shared.poller.add(&stream, key, Interest::READ)?;
        self.core.obs().accepts.inc();
        self.core.obs().conns_open.add(1);
        self.conns.insert(
            key,
            Conn {
                stream,
                state,
                outbox,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                interest: Interest::READ,
                peer_eof: false,
                paused: false,
                dropped: false,
            },
        );
        Ok(())
    }

    /// Pull everything readable out of a connection, frame complete JSONL
    /// lines, and dispatch them into the core.
    fn read_conn(&mut self, key: usize) {
        let obs = Arc::clone(self.core.obs());
        let mut lines: Vec<String> = Vec::new();
        let mut oversized = false;
        let state = {
            let Some(conn) = self.conns.get_mut(&key) else { return };
            if conn.paused || conn.peer_eof || conn.dropped {
                return;
            }
            let mut chunk = [0u8; 16 * 1024];
            let mut budget = READ_BUDGET;
            loop {
                if budget == 0 {
                    // Level-triggered: the remaining bytes re-deliver the
                    // event after other connections get their pass.
                    obs.read_budget_exhausted.inc();
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        // EOF terminates a trailing unterminated line, same
                        // as `BufRead::lines` on the blocking path.
                        if !conn.read_buf.is_empty() {
                            lines.push(String::from_utf8_lossy(&conn.read_buf).into_owned());
                            conn.read_buf.clear();
                        }
                        break;
                    }
                    Ok(n) => {
                        budget = budget.saturating_sub(n);
                        obs.bytes_in.add(n as u64);
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        let mut start = 0;
                        while let Some(offset) =
                            conn.read_buf[start..].iter().position(|&b| b == b'\n')
                        {
                            lines.push(
                                String::from_utf8_lossy(&conn.read_buf[start..start + offset])
                                    .into_owned(),
                            );
                            start += offset + 1;
                        }
                        conn.read_buf.drain(..start);
                        if conn.read_buf.len() > self.config.max_line_bytes {
                            oversized = true;
                            conn.peer_eof = true;
                            conn.read_buf.clear();
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dropped = true;
                        break;
                    }
                }
            }
            if conn.dropped {
                return;
            }
            Arc::clone(&conn.state)
        };
        for line in &lines {
            self.core.handle_line(&state, line);
        }
        if oversized {
            // Connection-level failure: no command (and so no wire form) was
            // ever parsed, so it renders in the legacy v0 shape.
            state.send(WireProto::V0, &ServerReply::Error {
                id: None,
                message: format!(
                    "input line exceeds {} bytes without a newline; closing connection",
                    self.config.max_line_bytes
                ),
            });
        }
    }

    /// Stage outbox bytes and write as much as the socket accepts, then
    /// recompute interest (write interest only while bytes remain, read
    /// interest unless EOF'd or backpressured).
    fn flush_conn(&mut self, key: usize) {
        let obs = Arc::clone(self.core.obs());
        let Some(conn) = self.conns.get_mut(&key) else { return };
        if conn.dropped {
            return;
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        conn.outbox.take_into(&mut conn.write_buf);
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dropped = true;
                    return;
                }
                Ok(n) => {
                    obs.bytes_out.add(n as u64);
                    conn.write_pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dropped = true;
                    return;
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        let backlog = conn.unflushed();
        if conn.paused {
            if backlog <= self.config.max_buffered_bytes / 2 {
                conn.paused = false;
                obs.backpressure_resumes.inc();
            }
        } else if backlog > self.config.max_buffered_bytes {
            conn.paused = true;
            obs.backpressure_pauses.inc();
        }
        let interest = Interest {
            readable: !conn.peer_eof && !conn.paused,
            writable: backlog > 0,
        };
        if interest != conn.interest {
            match self.shared.poller.modify(&conn.stream, key, interest) {
                Ok(()) => conn.interest = interest,
                Err(_) => conn.dropped = true,
            }
        }
    }

    /// Flush every connection a worker flagged since the last pass.
    fn flush_dirty(&mut self) {
        loop {
            let mut dirty =
                std::mem::take(&mut *self.shared.dirty.lock().expect("dirty list poisoned"));
            if dirty.is_empty() {
                return;
            }
            dirty.sort_unstable();
            dirty.dedup();
            for key in dirty {
                self.flush_conn(key);
            }
        }
    }

    /// Close every connection that is finished (EOF seen, all replies
    /// delivered) or broken.
    fn reap(&mut self) {
        let done: Vec<usize> =
            self.conns.iter().filter(|(_, c)| c.closable()).map(|(k, _)| *k).collect();
        for key in done {
            self.close_conn(key);
        }
    }

    fn close_conn(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            conn.outbox.close();
            self.core.obs().conns_open.add(-1);
            let _ = self.shared.poller.delete(&conn.stream);
            // A broken connection may still have plans queued; nobody can
            // receive them, so free the scheduler slots (and end any event
            // subscription).
            self.core.drop_conn(conn.state.id());
        }
    }

    /// Graceful shutdown: stop accepting and reading, give in-flight work up
    /// to `drain_timeout` to reply and flush, then close everything.
    fn drain_on_shutdown(&mut self) -> io::Result<()> {
        let _ = self.shared.poller.delete(&self.listener);
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in &keys {
            if let Some(conn) = self.conns.get_mut(key) {
                conn.peer_eof = true;
            }
            self.flush_conn(*key);
        }
        self.reap();
        let deadline = Instant::now() + self.config.drain_timeout;
        let mut events: Vec<Event> = Vec::new();
        while !self.conns.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            events.clear();
            let wait = (deadline - now).min(Duration::from_millis(50));
            self.shared.poller.wait(&mut events, Some(wait))?;
            let ready = std::mem::take(&mut events);
            for event in &ready {
                if event.key != LISTENER_KEY {
                    self.flush_conn(event.key);
                }
            }
            events = ready;
            self.flush_dirty();
            self.reap();
        }
        let leftover: Vec<usize> = self.conns.keys().copied().collect();
        for key in leftover {
            self.close_conn(key);
        }
        Ok(())
    }
}

impl PlanServer {
    /// Serve TCP connections on `addr` forever: every connection is
    /// multiplexed onto one epoll reactor and shares one scheduler, plan
    /// engine and worker pool.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("qsync-serve: listening on {}", listener.local_addr()?);
        self.serve_listener(listener, ShutdownSignal::new())
    }

    /// Serve an already-bound listener until `shutdown` fires (the testable
    /// entry point behind [`serve_tcp`](Self::serve_tcp)). On shutdown the
    /// reactor stops accepting, drains outstanding replies within the
    /// transport's `drain_timeout`, stops the shared core and returns.
    pub fn serve_listener(
        &self,
        listener: TcpListener,
        shutdown: ShutdownSignal,
    ) -> io::Result<()> {
        let handle = ServeCore::start(
            Arc::clone(self.engine()),
            self.workers(),
            self.sched_config().clone(),
            self.transport_config().event_outbox_cap,
        );
        let result = Reactor::new(
            Arc::clone(&handle.core),
            listener,
            shutdown,
            self.transport_config().clone(),
        )
        .and_then(|mut reactor| reactor.run());
        handle.stop();
        result
    }
}
