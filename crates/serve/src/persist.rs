//! Snapshot persistence: encoding the engine's live state — plan cache and
//! initial-setting memo — to [`qsync_store`] records and merging it back.
//!
//! The record schema is deliberately drift-tolerant in both directions:
//!
//! * **Forward**: a record kind or record version this build does not know is
//!   *skipped and counted*, never an error — a snapshot written by a newer
//!   server warm-loads the entries an older server understands.
//! * **Backward**: every plan record re-derives its cache key and cluster
//!   fingerprint from its own embedded request on import
//!   ([`PlanEngine::adopt_plan`]); a record whose stored key no longer
//!   matches the request's content address (a key-schema change between
//!   builds) loads as a skip, never a poisoned cache entry.
//!
//! File integrity (magic, format version, truncation, checksum) is
//! `qsync-store`'s job and is all-or-nothing: a corrupted snapshot loads
//! **zero** records and surfaces a [`StoreError`] — the server then boots
//! cold rather than half-warm. Record-level drift is per-entry and lossy by
//! design. The same encoding feeds the `FetchSnapshot` replication reply, so
//! a replica bootstrap is bit-identical to a file load.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use qsync_api::PlanPayload;
use qsync_core::allocator::InitialSetting;
use qsync_graph::PrecisionDag;
use qsync_store::{Record, StoreError};

use crate::engine::PlanEngine;

/// Record kind for one plan-cache entry (body: [`PlanPayload`]).
pub const PLAN_KIND: &str = "plan";
/// Record kind for one memoized initial setting (body: [`MemoBody`]).
pub const MEMO_KIND: &str = "initial_memo";
/// Newest plan-record version this build writes and understands.
pub const PLAN_RECORD_VERSION: u32 = 1;
/// Newest memo-record version this build writes and understands.
pub const MEMO_RECORD_VERSION: u32 = 1;

/// Where (and how often) a server persists its plan store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Snapshot file path (`--store`). Loaded at boot if present and valid;
    /// the default target of `Snapshot`/`Load` commands.
    pub path: PathBuf,
    /// Periodic snapshot interval (`--snapshot-interval-ms`); `None` means
    /// snapshots happen only on command and at shutdown.
    pub snapshot_interval: Option<Duration>,
}

impl StoreConfig {
    /// A store at `path` with no periodic snapshots.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        StoreConfig { path: path.into(), snapshot_interval: None }
    }
}

/// What a snapshot import merged into the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Plan entries adopted into the cache.
    pub plans: u64,
    /// Initial-setting memo entries adopted.
    pub memos: u64,
    /// Records skipped: unknown kind, newer record version, malformed body,
    /// or a plan whose stored key is not its request's content address.
    pub skipped: u64,
    /// Snapshot size in bytes (as read).
    pub bytes: u64,
}

/// The body of one [`MEMO_KIND`] record. Fingerprints are hex `u128`s (the
/// vendored serde has no native `u128`); `t_min_bits` is the IEEE-754 bit
/// pattern of the memoized `T_min` so the restore is bit-exact, keeping
/// memoized plans byte-identical to freshly computed ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoBody {
    /// Model-graph fingerprint (hex u128).
    pub model_fp: String,
    /// Effective-cluster fingerprint (hex u128).
    pub cluster_fp: String,
    /// `f64::to_bits` of the memoized minimal iteration time.
    pub t_min_bits: u64,
    /// The memoized all-minimal precision assignment.
    pub pdag: PrecisionDag,
}

fn parse_fp(hex: &str) -> Option<u128> {
    u128::from_str_radix(hex, 16).ok()
}

/// The engine's plan-cache entries as store records, sorted by cache key.
/// Deterministic given the cache contents — two engines with identical
/// resident plans produce byte-identical record lists (the replica-coherence
/// check in the lab compares exactly this).
pub fn plan_records(engine: &PlanEngine) -> Vec<Record> {
    engine
        .cache()
        .entries()
        .into_iter()
        .map(|(key, entry)| Record {
            kind: PLAN_KIND.to_string(),
            version: PLAN_RECORD_VERSION,
            key,
            body: serde_json::to_value(&PlanPayload {
                request: entry.request,
                response: entry.response,
                inference_pdag: entry.inference_pdag,
            }),
        })
        .collect()
}

/// The engine's full persistent state — plan entries then memo entries, each
/// group sorted by key — ready for [`qsync_store::encode`].
pub fn export_records(engine: &PlanEngine) -> Vec<Record> {
    let mut records = plan_records(engine);
    records.extend(engine.memo_entries().into_iter().map(|((model_fp, cluster_fp), initial)| {
        Record {
            kind: MEMO_KIND.to_string(),
            version: MEMO_RECORD_VERSION,
            key: format!("{model_fp:032x}:{cluster_fp:032x}"),
            body: serde_json::to_value(&MemoBody {
                model_fp: format!("{model_fp:032x}"),
                cluster_fp: format!("{cluster_fp:032x}"),
                t_min_bits: initial.t_min_us.to_bits(),
                pdag: initial.pdag,
            }),
        }
    }));
    records
}

/// Merge verified records into the engine, skipping (and counting) anything
/// this build does not understand. Plan adoption goes through
/// [`PlanEngine::adopt_plan`], so a drifted key schema downgrades to a skip.
pub fn import_records(engine: &PlanEngine, records: Vec<Record>) -> ImportStats {
    let mut stats = ImportStats::default();
    for record in records {
        match (record.kind.as_str(), record.version) {
            (PLAN_KIND, v) if v <= PLAN_RECORD_VERSION => {
                let adopted = serde_json::from_value::<PlanPayload>(&record.body)
                    .ok()
                    .filter(|payload| payload.response.key == record.key)
                    .is_some_and(|payload| {
                        engine.adopt_plan(
                            payload.request,
                            payload.response,
                            payload.inference_pdag,
                        )
                    });
                if adopted {
                    stats.plans += 1;
                } else {
                    stats.skipped += 1;
                }
            }
            (MEMO_KIND, v) if v <= MEMO_RECORD_VERSION => {
                let parsed = serde_json::from_value::<MemoBody>(&record.body).ok().and_then(
                    |body| {
                        Some((
                            parse_fp(&body.model_fp)?,
                            parse_fp(&body.cluster_fp)?,
                            InitialSetting {
                                pdag: body.pdag,
                                t_min_us: f64::from_bits(body.t_min_bits),
                            },
                        ))
                    },
                );
                match parsed {
                    Some((model_fp, cluster_fp, initial)) => {
                        engine.memo_insert(model_fp, cluster_fp, initial);
                        stats.memos += 1;
                    }
                    None => stats.skipped += 1,
                }
            }
            // Unknown kind or a version from the future: drift, not an error.
            _ => stats.skipped += 1,
        }
    }
    stats
}

/// The engine's state as one snapshot string in the qsync-store file format —
/// what `Snapshot` writes to disk and `FetchSnapshot` sends over the wire.
/// Returns the text and its record count.
pub fn snapshot_string(engine: &PlanEngine) -> (String, u64) {
    let records = export_records(engine);
    let entries = records.len() as u64;
    (qsync_store::encode(&records), entries)
}

/// Atomically write a snapshot of the engine to `path`, recording the
/// persistence instruments. Returns `(entries, bytes)` written.
pub fn snapshot_to_path(engine: &PlanEngine, path: &Path) -> Result<(u64, u64), StoreError> {
    let started = Instant::now();
    let records = export_records(engine);
    let report = qsync_store::write_atomic(path, &records)?;
    let obs = engine.obs();
    obs.snapshot_writes.inc();
    obs.snapshot_entries.record(report.entries);
    obs.snapshot_bytes.record(report.bytes);
    obs.snapshot_write_us.record(started.elapsed().as_micros() as u64);
    Ok((report.entries, report.bytes))
}

/// Verify and merge a snapshot string (a `FetchSnapshot` reply body, or a
/// file already read to memory) into the engine.
pub fn import_string(engine: &PlanEngine, data: &str) -> Result<ImportStats, StoreError> {
    let started = Instant::now();
    let loaded = qsync_store::decode(data)?;
    let mut stats = import_records(engine, loaded.records);
    stats.skipped += loaded.skipped_malformed;
    stats.bytes = loaded.bytes;
    engine.obs().snapshot_load_us.record(started.elapsed().as_micros() as u64);
    Ok(stats)
}

/// Verify and merge a snapshot file into the engine. A file that fails
/// verification (bad magic, unsupported format version, truncation, checksum
/// mismatch, unreadable) merges **nothing**: the error is the caller's cue to
/// continue cold.
pub fn load_from_path(engine: &PlanEngine, path: &Path) -> Result<ImportStats, StoreError> {
    let started = Instant::now();
    let loaded = qsync_store::read(path)?;
    let mut stats = import_records(engine, loaded.records);
    stats.skipped += loaded.skipped_malformed;
    stats.bytes = loaded.bytes;
    engine.obs().snapshot_load_us.record(started.elapsed().as_micros() as u64);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::request::{PlanOutcome, PlanRequest};
    use qsync_cluster::topology::ClusterSpec;

    fn planned_engine() -> PlanEngine {
        let engine = PlanEngine::new();
        for (id, batch) in [(1u64, 8usize), (2, 16)] {
            engine
                .plan(&PlanRequest::new(
                    id,
                    ModelSpec::SmallMlp { batch, in_features: 32, hidden: 64, classes: 8 },
                    ClusterSpec::hybrid_small(),
                ))
                .unwrap();
        }
        engine
    }

    #[test]
    fn export_import_round_trips_plans_and_memos() {
        let primary = planned_engine();
        let (text, entries) = snapshot_string(&primary);
        assert_eq!(entries, 2 + primary.memo_len() as u64);

        let replica = PlanEngine::new();
        let stats = import_string(&replica, &text).unwrap();
        assert_eq!(stats.plans, 2);
        assert_eq!(stats.memos, primary.memo_len() as u64);
        assert_eq!(stats.skipped, 0);
        // Byte-identical plan state: the replica's plan records re-encode to
        // exactly the primary's.
        assert_eq!(
            qsync_store::encode(&plan_records(&replica)),
            qsync_store::encode(&plan_records(&primary))
        );
        // And the warmed replica serves the zoo entirely from cache.
        let request = PlanRequest::new(
            9,
            ModelSpec::SmallMlp { batch: 8, in_features: 32, hidden: 64, classes: 8 },
            ClusterSpec::hybrid_small(),
        );
        assert_eq!(replica.plan(&request).unwrap().outcome, PlanOutcome::CacheHit);
        assert_eq!(replica.obs().snapshot().histogram("qsync_plan_latency_us{kind=\"cold\"}").map(|h| h.count), Some(0));
    }

    #[test]
    fn unknown_kinds_and_future_versions_are_skipped_not_fatal() {
        let primary = planned_engine();
        let mut records = export_records(&primary);
        records.push(Record {
            kind: "hologram_index".to_string(),
            version: 1,
            key: "whatever".to_string(),
            body: serde_json::to_value(&vec![1u64, 2, 3]),
        });
        records.push(Record {
            kind: PLAN_KIND.to_string(),
            version: PLAN_RECORD_VERSION + 1,
            key: "from-the-future".to_string(),
            body: serde_json::to_value(&"opaque"),
        });
        let replica = PlanEngine::new();
        let stats = import_records(&replica, records);
        assert_eq!(stats.plans, 2);
        assert_eq!(stats.skipped, 2);
        assert_eq!(replica.cache().len(), 2);
    }

    #[test]
    fn plan_record_with_drifted_key_is_skipped() {
        let primary = planned_engine();
        let mut records = plan_records(&primary);
        records[0].key = format!("{}0", records[0].key);
        let replica = PlanEngine::new();
        let stats = import_records(&replica, records);
        assert_eq!(stats.plans, 1);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn memo_restore_is_bit_exact() {
        let primary = planned_engine();
        let (text, _) = snapshot_string(&primary);
        let replica = PlanEngine::new();
        import_string(&replica, &text).unwrap();
        let a = primary.memo_entries();
        let b = replica.memo_entries();
        assert_eq!(a.len(), b.len());
        for ((ka, ia), (kb, ib)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ia.t_min_us.to_bits(), ib.t_min_us.to_bits());
            assert_eq!(ia.pdag, ib.pdag);
        }
    }

    #[test]
    fn snapshot_file_round_trips_and_corruption_loads_nothing() {
        let primary = planned_engine();
        let dir = std::env::temp_dir().join(format!("qsync-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.qss");
        let (entries, bytes) = snapshot_to_path(&primary, &path).unwrap();
        assert!(entries >= 2 && bytes > 0);

        let replica = PlanEngine::new();
        let stats = load_from_path(&replica, &path).unwrap();
        assert_eq!(stats.plans, 2);

        // Flip one payload byte: verification fails, nothing merges.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let cold = PlanEngine::new();
        assert!(load_from_path(&cold, &path).is_err());
        assert_eq!(cold.cache().len(), 0);
        assert_eq!(cold.memo_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
