//! Server-wide observability: the [`ServeObs`] bundle of hot-path
//! instruments plus the request trace log.
//!
//! One `ServeObs` lives behind the [`PlanEngine`](crate::engine::PlanEngine)
//! and is shared by every layer — transport, scheduler dispatch, plan
//! engine, delta pipeline — so a single `Metrics` command (or a scrape of
//! the `--admin-addr` text endpoint) sees the whole server. Instruments are
//! interned once at construction; the record paths are the qsync-obs
//! primitives (relaxed atomics, no locks, no allocation).
//!
//! Cheap-to-derive values (per-class queue depth, cache occupancy, per-shard
//! hit/miss/evict counts, scheduler shed/deadline counters) are *not*
//! instrumented on the hot path: they are appended to the snapshot at
//! `Metrics` time from the authoritative structures — see
//! [`ServeCore::metrics_snapshot`](crate::server::ServeCore).

use qsync_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry, TraceLog};
use qsync_pool::PoolStats;
use std::sync::{Arc, Mutex};

/// Hot-path instruments and the trace-span ring for one server instance.
///
/// Constructed enabled by default; [`ServeObs::disabled`] builds the same
/// shape with recording compiled down to a branch, which is what the
/// overhead-guard bench compares against.
#[derive(Debug)]
pub struct ServeObs {
    /// The registry every instrument below is interned in; snapshot this
    /// (plus the dynamic gauges) to answer `Metrics`.
    pub registry: Registry,
    /// Trace-id mint and bounded span ring; answers `Trace`.
    pub trace: TraceLog,

    // ---- transport ----
    /// Connections accepted by the reactor.
    pub accepts: Arc<Counter>,
    /// `accept(2)` failures that triggered the resource-exhaustion backoff
    /// (EMFILE/ENFILE/ENOMEM).
    pub accept_pauses: Arc<Counter>,
    /// 1 while accepts are paused by the resource-exhaustion backoff, else 0.
    pub accept_paused: Arc<Gauge>,
    /// Bytes read off sockets.
    pub bytes_in: Arc<Counter>,
    /// Bytes written to sockets.
    pub bytes_out: Arc<Counter>,
    /// Size in bytes of each framed command line.
    pub frame_bytes: Arc<Histogram>,
    /// Times a connection consumed its whole per-pass read budget (a
    /// flooding client being round-robined, not an error).
    pub read_budget_exhausted: Arc<Counter>,
    /// Read-interest withdrawals because a connection's reply backlog
    /// passed `max_buffered_bytes`.
    pub backpressure_pauses: Arc<Counter>,
    /// Read-interest restorations after the backlog drained below half.
    pub backpressure_resumes: Arc<Counter>,
    /// Connections currently registered with the reactor.
    pub conns_open: Arc<Gauge>,
    /// Accepted connections handed off from the acceptor reactor to a peer
    /// reactor (multi-reactor servers; 0 with one reactor).
    pub reactor_handoffs: Arc<Counter>,
    /// Commands shed by a per-connection token-bucket rate limit (each one
    /// answered with a structured `RateLimited` error, never dropped).
    pub rate_limited_conn: Arc<Counter>,
    /// Commands shed by a per-client token-bucket rate limit.
    pub rate_limited_client: Arc<Counter>,

    // ---- scheduler ----
    /// Milliseconds a dispatched job waited in its queue.
    pub dispatch_wait_ms: Arc<Histogram>,

    // ---- engine / cache ----
    /// Cold plan latency (full allocator run), microseconds.
    pub plan_cold_us: Arc<Histogram>,
    /// Warm re-plan latency (warm-started allocator), microseconds.
    pub plan_warm_us: Arc<Histogram>,
    /// Cache-hit service latency, microseconds.
    pub plan_hit_us: Arc<Histogram>,
    /// Requests that piggy-backed on an identical in-flight computation
    /// instead of planning (single-flight coalesces).
    pub singleflight_coalesced: Arc<Counter>,
    /// Brute-force initial passes preempted by the cooperative eval budget
    /// (the pass committed its best-so-far and yielded the worker).
    pub plan_preemptions: Arc<Counter>,

    // ---- delta pipeline ----
    /// Deltas composed into each applied wave.
    pub wave_width: Arc<Histogram>,
    /// Deltas currently parked in the coalescer window.
    pub coalescer_pending: Arc<Gauge>,
    /// Length of each warm re-plan chain run after an invalidation.
    pub replan_chain_len: Arc<Histogram>,
    /// Microseconds from wave application to the last fanned-out re-plan
    /// completing.
    pub fanout_us: Arc<Histogram>,
    /// Server events delivered to subscriber outboxes.
    pub events_emitted: Arc<Counter>,
    /// Server events dropped because a subscriber's outbox was over the
    /// event capacity (per-subscriber detail rides in `Stats`/`Resync`).
    pub events_dropped: Arc<Counter>,

    // ---- persistence / replication ----
    /// Snapshots written to the store (periodic + explicit `Snapshot`).
    pub snapshot_writes: Arc<Counter>,
    /// Entries in each written snapshot.
    pub snapshot_entries: Arc<Histogram>,
    /// Bytes in each written snapshot.
    pub snapshot_bytes: Arc<Histogram>,
    /// Microseconds to encode and atomically write each snapshot.
    pub snapshot_write_us: Arc<Histogram>,
    /// Microseconds to read, verify, and import each snapshot load
    /// (warm boot, `Load`, and replica bootstrap pulls).
    pub snapshot_load_us: Arc<Histogram>,
    /// Plans that reused a memoized brute-force initial setting instead of
    /// re-running the exhaustive pass.
    pub memo_hits: Arc<Counter>,
    /// Plans that ran the exhaustive initial pass (and memoized it).
    pub memo_misses: Arc<Counter>,
    /// Plans that reused a memoized built system (device profiles, casting
    /// models, synthetic statistics) instead of re-profiling the cluster.
    pub profile_memo_hits: Arc<Counter>,
    /// Plans that profiled the cluster and built the system from scratch.
    pub profile_memo_misses: Arc<Counter>,
    /// Highest primary event seq this replica has applied (replica side).
    pub replica_applied_seq: Arc<Gauge>,
    /// Primary seq minus applied seq at the last applied event (replica side).
    pub replica_lag_seq: Arc<Gauge>,
    /// Full snapshot pulls a replica performed to bootstrap or to recover
    /// from an event-seq gap or disconnect.
    pub resync_pulls: Arc<Counter>,

    // ---- compute pool ----
    /// Worker threads the process-global qsync-pool is sized to (0 = the
    /// pool executes inline on the calling thread).
    pub pool_threads: Arc<Gauge>,
    /// 1 once the pool's worker threads have actually been spawned (the
    /// pool is lazy: a sequential server never spawns them), else 0.
    pub pool_spawned: Arc<Gauge>,
    /// Chunk jobs currently queued in the pool (injector plus all deques).
    pub pool_queue_depth: Arc<Gauge>,
    /// Chunk jobs executed by the pool (workers and helping callers).
    pub pool_jobs: Arc<Counter>,
    /// Jobs taken from another worker's deque (work stealing).
    pub pool_steals: Arc<Counter>,
    /// Jobs submitted through the global injector (from non-pool threads).
    pub pool_injected: Arc<Counter>,
    /// Times a worker parked waiting for work.
    pub pool_parks: Arc<Counter>,
    /// Explicit wakeups sent to parked workers.
    pub pool_unparks: Arc<Counter>,
    /// The pool stats already mirrored into the instruments above. The pool
    /// keeps its own monotonic atomics (it has no qsync-obs dependency), so
    /// each snapshot adds only the delta since the previous sync — counters
    /// stay monotonic even though the bridge runs on every scrape.
    pool_synced: Mutex<PoolStats>,
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new()
    }
}

impl ServeObs {
    /// An enabled instrument set (the server default).
    pub fn new() -> Self {
        Self::build(Registry::new())
    }

    /// The same instrument set recording nothing — every record call is one
    /// predictable branch. The overhead-guard bench serves with this to pin
    /// the cost of the instrumentation itself.
    pub fn disabled() -> Self {
        Self::build(Registry::disabled())
    }

    /// Whether the instruments record.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    fn build(registry: Registry) -> Self {
        let r = &registry;
        ServeObs {
            accepts: r.counter("qsync_transport_accepts_total"),
            accept_pauses: r.counter("qsync_transport_accept_pauses_total"),
            accept_paused: r.gauge("qsync_transport_accept_paused"),
            bytes_in: r.counter("qsync_transport_bytes_in_total"),
            bytes_out: r.counter("qsync_transport_bytes_out_total"),
            frame_bytes: r.histogram("qsync_transport_frame_bytes"),
            read_budget_exhausted: r.counter("qsync_transport_read_budget_exhausted_total"),
            backpressure_pauses: r.counter("qsync_transport_backpressure_pauses_total"),
            backpressure_resumes: r.counter("qsync_transport_backpressure_resumes_total"),
            conns_open: r.gauge("qsync_transport_conns_open"),
            reactor_handoffs: r.counter("qsync_transport_reactor_handoffs_total"),
            rate_limited_conn: r.counter("qsync_transport_rate_limited_total{scope=\"conn\"}"),
            rate_limited_client: r.counter("qsync_transport_rate_limited_total{scope=\"client\"}"),
            dispatch_wait_ms: r.histogram("qsync_sched_dispatch_wait_ms"),
            plan_cold_us: r.histogram("qsync_plan_latency_us{kind=\"cold\"}"),
            plan_warm_us: r.histogram("qsync_plan_latency_us{kind=\"warm\"}"),
            plan_hit_us: r.histogram("qsync_plan_latency_us{kind=\"hit\"}"),
            singleflight_coalesced: r.counter("qsync_engine_singleflight_coalesced_total"),
            plan_preemptions: r.counter("qsync_plan_preemptions_total"),
            wave_width: r.histogram("qsync_delta_wave_width"),
            coalescer_pending: r.gauge("qsync_delta_coalescer_pending"),
            replan_chain_len: r.histogram("qsync_delta_replan_chain_len"),
            fanout_us: r.histogram("qsync_delta_fanout_us"),
            events_emitted: r.counter("qsync_events_emitted_total"),
            events_dropped: r.counter("qsync_events_dropped_total"),
            snapshot_writes: r.counter("qsync_store_snapshot_writes_total"),
            snapshot_entries: r.histogram("qsync_store_snapshot_entries"),
            snapshot_bytes: r.histogram("qsync_store_snapshot_bytes"),
            snapshot_write_us: r.histogram("qsync_store_snapshot_write_us"),
            snapshot_load_us: r.histogram("qsync_store_snapshot_load_us"),
            memo_hits: r.counter("qsync_engine_memo_hits_total"),
            memo_misses: r.counter("qsync_engine_memo_misses_total"),
            profile_memo_hits: r.counter("qsync_engine_profile_memo_hits_total"),
            profile_memo_misses: r.counter("qsync_engine_profile_memo_misses_total"),
            replica_applied_seq: r.gauge("qsync_replica_applied_seq"),
            replica_lag_seq: r.gauge("qsync_replica_lag_seq"),
            resync_pulls: r.counter("qsync_replica_resync_pulls_total"),
            pool_threads: r.gauge("qsync_pool_threads"),
            pool_spawned: r.gauge("qsync_pool_spawned"),
            pool_queue_depth: r.gauge("qsync_pool_queue_depth"),
            pool_jobs: r.counter("qsync_pool_jobs_total"),
            pool_steals: r.counter("qsync_pool_steals_total"),
            pool_injected: r.counter("qsync_pool_injected_total"),
            pool_parks: r.counter("qsync_pool_parks_total"),
            pool_unparks: r.counter("qsync_pool_unparks_total"),
            pool_synced: Mutex::new(PoolStats::default()),
            trace: TraceLog::default(),
            registry,
        }
    }

    /// Snapshot the registered instruments (static part of the `Metrics`
    /// reply; the server appends the derived gauges on top). Refreshes the
    /// `qsync_pool_*` instruments from the live pool first, so a `Metrics`
    /// command or a Prometheus scrape always sees current pool activity.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.sync_pool_stats(qsync_pool::current_stats());
        self.registry.snapshot()
    }

    /// Mirror a [`PoolStats`] reading into the `qsync_pool_*` instruments:
    /// gauges are set outright, counters advance by the delta from the last
    /// sync (the pool's own counters are monotonic per process).
    fn sync_pool_stats(&self, now: PoolStats) {
        let mut last = self.pool_synced.lock().unwrap();
        self.pool_jobs.add(now.jobs.saturating_sub(last.jobs));
        self.pool_steals.add(now.steals.saturating_sub(last.steals));
        self.pool_injected.add(now.injected.saturating_sub(last.injected));
        self.pool_parks.add(now.parks.saturating_sub(last.parks));
        self.pool_unparks.add(now.unparks.saturating_sub(last.unparks));
        self.pool_threads.set(now.workers as i64);
        self.pool_spawned.set(now.spawned as i64);
        self.pool_queue_depth.set(now.queue_depth as i64);
        *last = now;
    }

    /// The per-reactor open-connection gauge
    /// `qsync_transport_reactor_conns{reactor="<i>"}`, interned on first use
    /// (registry interning is idempotent by name, so each reactor resolves
    /// its gauge once at startup and shares it thereafter).
    pub fn reactor_conns(&self, reactor: usize) -> Arc<Gauge> {
        self.registry.gauge(&format!("qsync_transport_reactor_conns{{reactor=\"{reactor}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_obs_registers_every_instrument_once() {
        let obs = ServeObs::new();
        obs.accepts.inc();
        obs.plan_cold_us.record(1234);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("qsync_transport_accepts_total"), Some(1));
        assert_eq!(
            snap.histogram("qsync_plan_latency_us{kind=\"cold\"}").map(|h| h.count),
            Some(1)
        );
        // Distinct label blocks are distinct instruments.
        assert_eq!(
            snap.histogram("qsync_plan_latency_us{kind=\"warm\"}").map(|h| h.count),
            Some(0)
        );
    }

    #[test]
    fn pool_bridge_adds_deltas_and_sets_gauges() {
        let obs = ServeObs::new();
        obs.sync_pool_stats(PoolStats {
            workers: 4,
            spawned: true,
            jobs: 10,
            steals: 2,
            injected: 3,
            parks: 1,
            unparks: 1,
            queue_depth: 5,
        });
        // A second sync must add only the delta, not re-add the totals.
        obs.sync_pool_stats(PoolStats {
            workers: 4,
            spawned: true,
            jobs: 15,
            steals: 2,
            injected: 4,
            parks: 1,
            unparks: 2,
            queue_depth: 0,
        });
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counter("qsync_pool_jobs_total"), Some(15));
        assert_eq!(snap.counter("qsync_pool_steals_total"), Some(2));
        assert_eq!(snap.counter("qsync_pool_injected_total"), Some(4));
        assert_eq!(snap.counter("qsync_pool_unparks_total"), Some(2));
        assert_eq!(snap.gauge("qsync_pool_threads"), Some(4));
        assert_eq!(snap.gauge("qsync_pool_spawned"), Some(1));
        assert_eq!(snap.gauge("qsync_pool_queue_depth"), Some(0));
    }

    #[test]
    fn snapshot_reports_the_live_pool_shape() {
        let obs = ServeObs::new();
        let snap = obs.snapshot();
        // The bridge reads the process-global pool: whatever its size, the
        // gauge must reflect it, and on a freshly-snapshotted obs the
        // counters mirror the pool's own monotonic totals.
        assert_eq!(
            snap.gauge("qsync_pool_threads"),
            Some(qsync_pool::current_stats().workers as i64)
        );
        assert!(snap.counter("qsync_pool_jobs_total").is_some());
    }

    #[test]
    fn disabled_obs_records_nothing_but_snapshots_the_same_names() {
        let obs = ServeObs::disabled();
        obs.accepts.inc();
        obs.frame_bytes.record(77);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("qsync_transport_accepts_total"), Some(0));
        assert_eq!(snap.histogram("qsync_transport_frame_bytes").map(|h| h.count), Some(0));
        assert!(!obs.is_enabled());
    }
}
