//! `qsync-serve` — the plan-serving daemon and its one-shot/load-test modes.
//!
//! ```text
//! qsync-serve serve [--workers N] [--tcp ADDR] [--admin-addr ADDR]
//!                   [--cache-capacity N] [--cache-shards N]
//!                   [--sched-policy fifo|drr] [--queue-cap N]
//!                   [--queue-cap-interactive N] [--queue-cap-batch N] [--queue-cap-background N]
//!                   [--drr-quantum N] [--shed-expired true|false] [--age-limit-ms N]
//!                   [--delta-window-ms N] [--plan-budget-evals N]
//!                   [--event-outbox-cap BYTES] [--accept-backoff-ms N]
//!                   [--reactors N] [--handoff least-loaded|round-robin]
//!                   [--rate-limit-conn RATE[,BURST]] [--rate-limit-client RATE[,BURST]]
//!                   [--store PATH] [--snapshot-interval-ms N] [--follow ADDR]
//!     Serve protocol lines (legacy v0 objects or v1 envelopes; see
//!     docs/PROTOCOL.md): from stdin (default) or a TCP socket. Plan
//!     requests may carry optional "priority" ("Interactive"|"Batch"|
//!     "Background"), "client_id" (fair-share identity), "weight" (DRR
//!     share) and "deadline_ms" fields; the scheduler dispatches
//!     accordingly (EDF lane > classes, deficit round robin across clients
//!     within a class). --delta-window-ms batches near-concurrent
//!     elasticity events into one invalidation wave. --admin-addr serves
//!     Prometheus-style text metrics over HTTP on a separate port (see
//!     docs/OBSERVABILITY.md). --event-outbox-cap bounds a subscriber's
//!     un-flushed bytes before broadcast events are shed (replies are
//!     never dropped; see "The event stream" in docs/PROTOCOL.md).
//!     --accept-backoff-ms sets how long accepts pause after a
//!     resource-exhaustion accept error (EMFILE and friends).
//!     --reactors shards the TCP transport across N epoll reactor threads
//!     (default: the available cores); reactor 0 accepts and hands
//!     connections off per --handoff — to the least-loaded reactor by
//!     default, or dealt round-robin — all sharing one core (see the
//!     "Transport" section of the README). --rate-limit-conn and
//!     --rate-limit-client arm token-bucket overload protection
//!     (commands/second, with an optional burst defaulting to the rate);
//!     a shed command is answered with a structured "rate_limited" error,
//!     never silently dropped. --age-limit-ms bounds how long a queued
//!     Batch/Background job can wait before it is dispatched ahead of the
//!     strict class order (starvation bound); --plan-budget-evals caps the
//!     brute-force initial pass per plan, committing the best setting found
//!     within the budget (cooperative preemption of cold plans).
//!     --store names the persistent plan-store snapshot file: it is
//!     warm-loaded on boot (a missing or corrupt file boots cold), is the
//!     default target of the Snapshot/Load admin commands, and is
//!     rewritten at shutdown; --snapshot-interval-ms adds periodic
//!     snapshots between those. --follow ADDR makes this server a replica
//!     of the primary at ADDR: it bootstraps its cache with FetchSnapshot
//!     and then mirrors the primary's adopt-subscribed event stream (see
//!     docs/PERSISTENCE.md).
//!
//! qsync-serve plan --model SPEC [--cluster SPEC] [--indicator NAME]
//!                  [--tolerance F] [--memory-fraction F]
//!     One-shot: plan and print the PlanResponse JSON to stdout.
//!
//! qsync-serve bench-load [--requests N] [--clients N] [--model SPEC] [--cluster SPEC]
//!                        [--cache-capacity N] [--cache-shards N] [--workers N]
//!     Load generation through the real stack: an in-process TCP server and
//!     one multiplexed qsync-client connection shared by N client threads;
//!     prints a latency summary with the cache hit/miss/eviction counters
//!     (see also benches/bench_plan_server.rs for the cold/hit/warm
//!     comparison).
//!
//! Model SPEC:   family[:batch[,extra]]   e.g. bert:2,16  resnet50:2,32  small_mlp
//! Cluster SPEC: a:V,T | b:V,T,MEMFRAC    e.g. a:2,2  b:2,2,0.3   (V100s, T4s)
//! ```

use std::io::{stdin, stdout, BufReader};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qsync_client::MuxClient;
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    CacheConfig, FollowerConfig, IndicatorChoice, ModelSpec, PlanEngine, PlanRequest, PlanServer,
    SchedConfig, ShutdownSignal, StoreConfig, TokenBucketConfig, TransportConfig,
};

fn parse_cluster(s: &str) -> Result<ClusterSpec, String> {
    let (kind, rest) = s.split_once(':').unwrap_or((s, ""));
    let nums: Vec<f64> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',')
            .map(|p| p.trim().parse::<f64>().map_err(|e| format!("bad number {p:?}: {e}")))
            .collect::<Result<_, _>>()?
    };
    let geti = |i: usize, default: usize| nums.get(i).map(|v| *v as usize).unwrap_or(default);
    match kind {
        "a" => Ok(ClusterSpec::cluster_a(geti(0, 2), geti(1, 2))),
        "b" => Ok(ClusterSpec::cluster_b(geti(0, 2), geti(1, 2), nums.get(2).copied().unwrap_or(0.3))),
        other => Err(format!("unknown cluster kind {other:?} (expected a:V,T or b:V,T,FRAC)")),
    }
}

fn parse_indicator(s: &str) -> Result<IndicatorChoice, String> {
    match s {
        "variance" | "qsync" => Ok(IndicatorChoice::Variance),
        "hessian" => Ok(IndicatorChoice::Hessian),
        "random" => Ok(IndicatorChoice::Random),
        other => Err(format!("unknown indicator {other:?} (variance|hessian|random)")),
    }
}

/// Tiny flag parser: `--name value` pairs after the subcommand.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected --flag, got {flag:?}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} needs a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn build_request(id: u64, flags: &Flags) -> Result<PlanRequest, String> {
    let model = ModelSpec::parse(flags.get("model").unwrap_or("small_mlp"))?;
    let cluster = parse_cluster(flags.get("cluster").unwrap_or("a:2,2"))?;
    let mut request = PlanRequest::new(id, model, cluster);
    if let Some(ind) = flags.get("indicator") {
        request.indicator = parse_indicator(ind)?;
    }
    if let Some(tol) = flags.get("tolerance") {
        request.throughput_tolerance =
            Some(tol.parse().map_err(|e| format!("bad --tolerance: {e}"))?);
    }
    if let Some(frac) = flags.get("memory-fraction") {
        request.memory_limit_fraction =
            Some(frac.parse().map_err(|e| format!("bad --memory-fraction: {e}"))?);
    }
    Ok(request)
}

fn parse_cache_config(flags: &Flags) -> Result<CacheConfig, String> {
    let defaults = CacheConfig::default();
    let capacity = match flags.get("cache-capacity") {
        Some(v) => v.parse().map_err(|e| format!("bad --cache-capacity: {e}"))?,
        None => defaults.capacity,
    };
    let shards = match flags.get("cache-shards") {
        Some(v) => v.parse().map_err(|e| format!("bad --cache-shards: {e}"))?,
        None => defaults.shards,
    };
    Ok(CacheConfig { capacity, shards })
}

fn parse_sched_config(flags: &Flags) -> Result<SchedConfig, String> {
    let mut config = SchedConfig::default();
    if let Some(policy) = flags.get("sched-policy") {
        config.policy = policy.parse()?;
    }
    if let Some(cap) = flags.get("queue-cap") {
        let cap: usize = cap.parse().map_err(|e| format!("bad --queue-cap: {e}"))?;
        config.class_caps = [cap; 3];
    }
    for (i, class) in ["interactive", "batch", "background"].iter().enumerate() {
        if let Some(cap) = flags.get(&format!("queue-cap-{class}")) {
            config.class_caps[i] =
                cap.parse().map_err(|e| format!("bad --queue-cap-{class}: {e}"))?;
        }
    }
    if let Some(quantum) = flags.get("drr-quantum") {
        config.quantum = quantum.parse().map_err(|e| format!("bad --drr-quantum: {e}"))?;
    }
    if let Some(shed) = flags.get("shed-expired") {
        config.shed_expired = match shed {
            "true" | "1" => true,
            "false" | "0" => false,
            other => return Err(format!("bad --shed-expired {other:?} (true|false)")),
        };
    }
    if let Some(ms) = flags.get("age-limit-ms") {
        config.age_limit_ms =
            Some(ms.parse().map_err(|e| format!("bad --age-limit-ms: {e}"))?);
    }
    Ok(config)
}

/// Parse a `--rate-limit-*` value: `RATE` or `RATE,BURST` (commands per
/// second; burst defaults to the rate).
fn parse_token_bucket(flag: &str, value: &str) -> Result<TokenBucketConfig, String> {
    let (rate, burst) = match value.split_once(',') {
        Some((rate, burst)) => (rate, Some(burst)),
        None => (value, None),
    };
    let rate_per_sec: u64 =
        rate.trim().parse().map_err(|e| format!("bad --{flag} rate: {e}"))?;
    let burst: u64 = match burst {
        Some(b) => b.trim().parse().map_err(|e| format!("bad --{flag} burst: {e}"))?,
        None => rate_per_sec,
    };
    Ok(TokenBucketConfig { rate_per_sec, burst })
}

fn parse_delta_window(flags: &Flags) -> Result<Duration, String> {
    match flags.get("delta-window-ms") {
        Some(v) => {
            let ms: u64 = v.parse().map_err(|e| format!("bad --delta-window-ms: {e}"))?;
            Ok(Duration::from_millis(ms))
        }
        None => Ok(Duration::ZERO),
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let workers: usize =
        flags.get("workers").unwrap_or("8").parse().map_err(|e| format!("bad --workers: {e}"))?;
    let mut engine_config =
        PlanEngine::with_config(parse_cache_config(flags)?, parse_delta_window(flags)?);
    if let Some(budget) = flags.get("plan-budget-evals") {
        engine_config = engine_config.with_plan_budget(Some(
            budget.parse().map_err(|e| format!("bad --plan-budget-evals: {e}"))?,
        ));
    }
    let engine = Arc::new(engine_config);
    if let Some(admin_addr) = flags.get("admin-addr") {
        let listener = TcpListener::bind(admin_addr)
            .map_err(|e| format!("bind --admin-addr {admin_addr}: {e}"))?;
        eprintln!("qsync-serve: metrics on http://{}/metrics", listener.local_addr().unwrap());
        let admin_engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name("qsync-serve-admin".into())
            .spawn(move || {
                if let Err(e) = qsync_serve::serve_admin(admin_engine, listener) {
                    eprintln!("qsync-serve: admin port failed: {e}");
                }
            })
            .map_err(|e| format!("spawn admin thread: {e}"))?;
    }
    let mut server = PlanServer::with_sched(engine, workers, parse_sched_config(flags)?);
    let mut transport = TransportConfig::default();
    if let Some(cap) = flags.get("event-outbox-cap") {
        transport.event_outbox_cap =
            cap.parse().map_err(|e| format!("bad --event-outbox-cap: {e}"))?;
    }
    if let Some(ms) = flags.get("accept-backoff-ms") {
        transport.accept_backoff = Duration::from_millis(
            ms.parse().map_err(|e| format!("bad --accept-backoff-ms: {e}"))?,
        );
    }
    // Default to one reactor per available core; the flag overrides.
    transport.reactors = match flags.get("reactors") {
        Some(n) => {
            let n: usize = n.parse().map_err(|e| format!("bad --reactors: {e}"))?;
            if n == 0 {
                return Err("--reactors must be at least 1".into());
            }
            n
        }
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    if let Some(policy) = flags.get("handoff") {
        transport.handoff = policy.parse().map_err(|e| format!("bad --handoff: {e}"))?;
    }
    if let Some(value) = flags.get("rate-limit-conn") {
        transport.rate_limit.per_conn = Some(parse_token_bucket("rate-limit-conn", value)?);
    }
    if let Some(value) = flags.get("rate-limit-client") {
        transport.rate_limit.per_client = Some(parse_token_bucket("rate-limit-client", value)?);
    }
    server = server.with_transport(transport);
    if let Some(path) = flags.get("store") {
        let mut store = StoreConfig::at(path);
        if let Some(ms) = flags.get("snapshot-interval-ms") {
            let ms: u64 = ms.parse().map_err(|e| format!("bad --snapshot-interval-ms: {e}"))?;
            store.snapshot_interval = Some(Duration::from_millis(ms));
        }
        server = server.with_store(store);
    } else if flags.get("snapshot-interval-ms").is_some() {
        return Err("--snapshot-interval-ms needs --store".into());
    }
    let _follower = match flags.get("follow") {
        Some(addr) => {
            let primary = addr
                .parse()
                .map_err(|e| format!("bad --follow address {addr:?}: {e}"))?;
            eprintln!("qsync-serve: following primary at {primary}");
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            Some(qsync_serve::follow(
                Arc::clone(server.engine()),
                FollowerConfig::new(primary),
                stop,
            ))
        }
        None => None,
    };
    match flags.get("tcp") {
        Some(addr) => {
            // The reactor multiplexes every connection on one thread; make
            // sure the fd budget, not the default soft ulimit, is the cap.
            match qsync_serve::transport::ensure_fd_limit(65_536) {
                Ok(limit) => eprintln!("qsync-serve: fd limit {limit}"),
                Err(e) => eprintln!("qsync-serve: could not raise fd limit: {e}"),
            }
            server.serve_tcp(addr).map_err(|e| e.to_string())
        }
        None => {
            let reader = BufReader::new(stdin());
            server.serve_lines(reader, stdout()).map_err(|e| e.to_string())
        }
    }
}

fn cmd_plan(flags: &Flags) -> Result<(), String> {
    let request = build_request(0, flags)?;
    let engine = PlanEngine::new();
    let response = engine.plan(&request).map_err(|e| e.to_string())?;
    println!("{}", serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_bench_load(flags: &Flags) -> Result<(), String> {
    let requests: usize =
        flags.get("requests").unwrap_or("64").parse().map_err(|e| format!("bad --requests: {e}"))?;
    let clients: usize =
        flags.get("clients").unwrap_or("8").parse().map_err(|e| format!("bad --clients: {e}"))?;
    let workers: usize =
        flags.get("workers").unwrap_or("8").parse().map_err(|e| format!("bad --workers: {e}"))?;
    let template = build_request(0, flags)?;
    let engine = Arc::new(PlanEngine::with_cache_config(parse_cache_config(flags)?));

    // The real stack: an ephemeral-port reactor server, one multiplexed
    // client connection, N submitter threads sharing it.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shutdown = ShutdownSignal::new();
    let server = PlanServer::with_engine(Arc::clone(&engine), workers);
    let signal = shutdown.clone();
    let server_thread = std::thread::spawn(move || server.serve_listener(listener, signal));
    let mux = MuxClient::connect(addr).map_err(|e| format!("connect bench client: {e}"))?;

    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..clients {
            let mux = mux.clone();
            let template = template.clone();
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = client;
                while i < requests {
                    let request = template.clone();
                    let t0 = Instant::now();
                    let response = mux.plan(request).expect("valid bench request");
                    assert_eq!(response.key, template.cache_key());
                    local.push(t0.elapsed().as_micros() as u64);
                    i += clients;
                }
                local
            }));
        }
        for h in handles {
            latencies_us.extend(h.join().expect("client thread panicked"));
        }
    });
    let wall_ms = started.elapsed().as_millis();
    drop(mux);
    shutdown.shutdown();
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p) as usize;
        latencies_us[idx]
    };
    let stats = engine.cache().stats();
    let summary = serde_json::json!({
        "requests": requests,
        "clients": clients,
        "transport": "tcp-mux",
        "wall_ms": wall_ms as u64,
        "p50_us": pct(0.50),
        "p90_us": pct(0.90),
        "p99_us": pct(0.99),
        "max_us": latencies_us.last().copied().unwrap_or(0),
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evicted": stats.evicted,
            "invalidated": stats.invalidated,
            "entries": stats.entries,
        },
    });
    println!("{}", serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("usage: qsync-serve <serve|plan|bench-load> [--flag value ...]");
            std::process::exit(2);
        }
    };
    let result = Flags::parse(rest).and_then(|flags| match command {
        "serve" => cmd_serve(&flags),
        "plan" => cmd_plan(&flags),
        "bench-load" => cmd_bench_load(&flags),
        other => Err(format!("unknown subcommand {other:?} (serve|plan|bench-load)")),
    });
    if let Err(message) = result {
        eprintln!("qsync-serve: {message}");
        std::process::exit(1);
    }
}
