//! End-to-end persistence and replication: real `qsync-serve` processes on
//! real TCP sockets, real snapshot files on disk.
//!
//! * Warm boot: plan a model zoo, snapshot, **restart the process**, and
//!   serve the whole zoo again without a single cold plan.
//! * Corruption: a flipped snapshot never prevents boot — the server comes
//!   up cold and plans normally.
//! * Replication: a `--follow` replica process converges to byte-identical
//!   plan-cache contents through bootstrap, a delta wave, and a primary
//!   kill/restart (link cut + resync).

mod common;

use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qsync_client::MuxClient;
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{ClusterDelta, DeltaRequest, ModelSpec, PlanOutcome, PlanRequest};

const STARTUP_TIMEOUT: Duration = Duration::from_secs(60);
const CONVERGE_TIMEOUT: Duration = Duration::from_secs(60);

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsync-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// An OS-assigned free port, released before use (tiny reuse race, retried
/// by the spawn loop).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").expect("probe port").local_addr().unwrap().port()
}

/// One `qsync-serve serve` child process; killed on drop.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawn `qsync-serve serve --tcp 127.0.0.1:<port> <extra>` and wait for
    /// the socket to accept. A child that exits early (e.g. the port was
    /// still in TIME_WAIT from a killed predecessor) is respawned until the
    /// deadline.
    fn spawn(port: u16, extra: &[&str]) -> ServerProc {
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            let mut child = Command::new(env!("CARGO_BIN_EXE_qsync-serve"))
                .args(["serve", "--tcp", &addr.to_string(), "--workers", "2"])
                .args(extra)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn qsync-serve");
            loop {
                if TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok() {
                    return ServerProc { child, addr };
                }
                if child.try_wait().expect("child status").is_some() {
                    break; // bind lost a race; respawn below
                }
                assert!(Instant::now() < deadline, "server on {addr} never came up");
                std::thread::sleep(Duration::from_millis(50));
            }
            assert!(Instant::now() < deadline, "server on {addr} kept exiting at startup");
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn client(&self) -> MuxClient {
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            match MuxClient::connect(self.addr) {
                Ok(client) => return client,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect {}: {e}", self.addr);
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Kill the process outright (no shutdown snapshot — tests that need
    /// one issue an explicit `Snapshot` command first).
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The model zoo every persistence test plans: distinct graphs and batch
/// sizes, all on one cluster shape.
fn zoo(cluster: &ClusterSpec) -> Vec<PlanRequest> {
    let models = [
        ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
        ModelSpec::SmallMlp { batch: 16, in_features: 16, hidden: 32, classes: 4 },
        ModelSpec::SmallMlp { batch: 32, in_features: 32, hidden: 64, classes: 8 },
        ModelSpec::SmallCnn { batch: 4, image: 16, classes: 4 },
        ModelSpec::SmallCnn { batch: 8, image: 16, classes: 4 },
    ];
    models
        .into_iter()
        .enumerate()
        .map(|(i, model)| PlanRequest::new(i as u64, model, cluster.clone()))
        .collect()
}

/// The canonical plan-record encoding of a live server's cache, pulled over
/// the wire: `FetchSnapshot`, drop the memo records (replicas do not plan,
/// so memo maps legitimately differ), re-encode.
fn wire_plan_records(mux: &MuxClient) -> String {
    let blob = mux.fetch_snapshot().expect("fetch snapshot");
    let loaded = qsync_store::decode(&blob.data).expect("well-formed snapshot blob");
    let plans: Vec<qsync_store::Record> =
        loaded.records.into_iter().filter(|r| r.kind == "plan").collect();
    qsync_store::encode(&plans)
}

/// Poll until two servers report byte-identical plan records (and at least
/// `min_entries` of them), panicking with a diff summary on timeout.
fn wait_converged(primary: &MuxClient, replica: &MuxClient, min_entries: usize) {
    let deadline = Instant::now() + CONVERGE_TIMEOUT;
    loop {
        let p = wire_plan_records(primary);
        let r = wire_plan_records(replica);
        let entries = qsync_store::decode(&p).expect("primary snapshot").records.len();
        if p == r && entries >= min_entries {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: primary has {entries} plan records, encodings {}",
            if p == r { "match" } else { "differ" }
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn degrade(cluster: &ClusterSpec, memory_fraction: f64) -> DeltaRequest {
    let rank = cluster.inference_ranks()[0];
    DeltaRequest::new(
        0,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction, compute_fraction: 0.95 },
    )
}

fn cold_plan_count(mux: &MuxClient) -> u64 {
    let metrics = mux.metrics().expect("metrics");
    metrics.histogram("qsync_plan_latency_us{kind=\"cold\"}").map(|h| h.count).unwrap_or(0)
}

#[test]
fn warm_boot_restart_serves_the_zoo_entirely_from_cache() {
    let dir = scratch("warm-boot");
    let store = dir.join("plans.qstore");
    let store_flag = store.to_str().unwrap();
    let cluster = ClusterSpec::hybrid_small();

    // Generation 1: plan the zoo cold, snapshot, die without ceremony.
    let gen1 = ServerProc::spawn(free_port(), &["--store", store_flag]);
    {
        let mux = gen1.client();
        for request in zoo(&cluster) {
            let response = mux.plan(request).expect("cold plan");
            assert_ne!(response.outcome, PlanOutcome::CacheHit, "fresh server, fresh keys");
        }
        let info = mux.snapshot(None).expect("snapshot to the configured store");
        assert!(info.entries >= zoo(&cluster).len() as u64);
        assert_eq!(info.path, store.display().to_string());
    }
    gen1.kill();
    assert!(store.exists(), "snapshot file persisted");

    // Generation 2: a new process over the same store file. Every zoo
    // request must be served from the warm-loaded cache — zero cold plans.
    let gen2 = ServerProc::spawn(free_port(), &["--store", store_flag]);
    let mux = gen2.client();
    for request in zoo(&cluster) {
        let response = mux.plan(request).expect("warm-boot plan");
        assert_eq!(response.outcome, PlanOutcome::CacheHit, "key {}", response.key);
    }
    assert_eq!(cold_plan_count(&mux), 0, "the restarted server never planned cold");
    let metrics = mux.metrics().expect("metrics");
    assert!(
        metrics.histogram("qsync_store_snapshot_load_us").map(|h| h.count).unwrap_or(0) >= 1,
        "warm boot recorded a snapshot load"
    );
    drop(mux);
    gen2.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_boots_cold_and_still_serves() {
    let dir = scratch("corrupt-boot");
    let store = dir.join("plans.qstore");
    std::fs::write(&store, b"qsync-store 1 0 deadbeef\nnot a record at all\n").unwrap();

    let server = ServerProc::spawn(free_port(), &["--store", store.to_str().unwrap()]);
    let mux = server.client();
    let response = mux
        .plan(PlanRequest::new(
            1,
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ClusterSpec::hybrid_small(),
        ))
        .expect("a corrupt store never prevents serving");
    assert_eq!(response.outcome, PlanOutcome::ColdPlanned, "nothing warm-loaded");
    // An explicit Snapshot heals the file in place.
    let info = mux.snapshot(None).expect("snapshot over the corrupt file");
    assert_eq!(info.entries, 2, "one plan record + one memo record");
    let loaded = mux.load(None).expect("the healed file loads");
    assert_eq!((loaded.plans, loaded.skipped), (1, 0));
    drop(mux);
    server.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replica_converges_through_delta_wave_and_primary_restart() {
    let dir = scratch("replication");
    let store = dir.join("primary.qstore");
    let store_flag = store.to_str().unwrap();
    let cluster = ClusterSpec::hybrid_small();

    let primary_port = free_port();
    let primary = ServerProc::spawn(primary_port, &["--store", store_flag]);
    let replica =
        ServerProc::spawn(free_port(), &["--follow", &primary.addr.to_string()]);
    let pmux = primary.client();
    let rmux = replica.client();

    // Bootstrap: the replica pulls the snapshot and mirrors the zoo.
    let mut keys = HashSet::new();
    for request in zoo(&cluster) {
        keys.insert(pmux.plan(request).expect("primary plans").key);
    }
    wait_converged(&pmux, &rmux, keys.len());

    // Delta wave: invalidations + warm re-plans ship as adopt events.
    let outcome = pmux.delta(degrade(&cluster, 0.5)).expect("delta applies");
    assert!(outcome.invalidated > 0, "the wave actually invalidated something");
    wait_converged(&pmux, &rmux, 1);

    // Link cut: persist, kill the primary, restart it on the same port from
    // its store. The replica reconnects, resyncs and pulls afresh.
    pmux.snapshot(None).expect("persist before the cut");
    drop(pmux);
    primary.kill();
    let primary2 = ServerProc::spawn(primary_port, &["--store", store_flag]);
    let pmux2 = primary2.client();

    // Post-restart traffic proves the resynced stream stays coherent.
    let extra = PlanRequest::new(
        99,
        ModelSpec::SmallMlp { batch: 64, in_features: 16, hidden: 32, classes: 4 },
        cluster.clone(),
    );
    pmux2.plan(extra).expect("new primary plans");
    wait_converged(&pmux2, &rmux, 2);

    // The replica did all of this without planning: every entry was adopted.
    assert_eq!(cold_plan_count(&rmux), 0, "the replica never planned cold");
    let metrics = rmux.metrics().expect("replica metrics");
    assert!(
        metrics.counter("qsync_replica_resync_pulls_total").unwrap_or(0) >= 2,
        "bootstrap + post-restart resync both pulled snapshots"
    );

    drop(rmux);
    drop(pmux2);
    replica.kill();
    primary2.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed golden snapshot fixture still warm-loads: snapshots written
/// by past builds must keep working on future ones. Regenerate (after an
/// intentional, additive format change) with
/// `QSYNC_REGEN_GOLDEN=1 cargo test -p qsync-serve --test persistence_e2e`.
#[test]
fn golden_snapshot_fixture_warm_loads() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/store_v1.qstore");
    let cluster = ClusterSpec::hybrid_small();
    let requests = zoo(&cluster);

    if std::env::var("QSYNC_REGEN_GOLDEN").is_ok() {
        let engine = qsync_serve::PlanEngine::new();
        for request in &requests {
            engine.plan(request).expect("fixture plan");
        }
        qsync_serve::persist::snapshot_to_path(&engine, &fixture).expect("write fixture");
    }

    let engine = qsync_serve::PlanEngine::new();
    let stats = qsync_serve::persist::load_from_path(&engine, &fixture).expect("fixture loads");
    assert_eq!(stats.plans, requests.len() as u64, "every fixture plan adopted");
    assert_eq!(stats.skipped, 0, "no fixture record drifted");
    assert!(stats.memos >= 1, "fixture carries initial-setting memos");
    for request in requests {
        let response = engine.plan(&request).expect("fixture-warmed plan");
        assert_eq!(response.outcome, PlanOutcome::CacheHit, "key {}", response.key);
    }
}
