//! Protocol fuzz against a **live** reactor server: arbitrary bytes,
//! truncated/mutated JSONL, and interleaved split writes across connections
//! must never panic the server, never wedge it (every probe runs under a
//! receive timeout), and always end in an `Error` reply or a clean close.
//!
//! One server instance backs every case (it must survive all of them); each
//! case opens fresh connections against it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ModelSpec, PlanEngine, PlanRequest, PlanServer, ServerCommand, ServerReply, TransportConfig,
};

mod common;
use common::Client;

/// Unique Stats ids so concurrent cases never confuse their probe replies.
fn probe_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 32);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The shared fuzz target: spawned once, deliberately leaked (the process
/// exits with the test run). A small `max_line_bytes` keeps oversize-line
/// probes cheap.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let engine = PlanEngine::shared();
        // Pre-warm the one model the valid probes use, so fuzz-case plan
        // replies are cache hits instead of repeated cold planning.
        engine.plan(&valid_request(0)).expect("pre-warm");
        let transport =
            TransportConfig { max_line_bytes: 64 * 1024, ..TransportConfig::default() };
        let server = common::TestServer::spawn(
            PlanServer::with_engine(engine, 2).with_transport(transport),
        );
        let addr = server.addr;
        std::mem::forget(server);
        addr
    })
}

fn valid_request(id: u64) -> PlanRequest {
    PlanRequest::new(
        id,
        ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
        ClusterSpec::hybrid_small(),
    )
}

fn valid_plan_line(id: u64) -> String {
    serde_json::to_string(&ServerCommand::Plan(valid_request(id))).expect("serializes")
}

/// Round-trip a Stats probe, proving the server (and this connection) is
/// alive and responsive. Replies to earlier garbage may arrive first; they
/// must all parse as [`ServerReply`] (enforced by `Client::recv`). Returns
/// the replies that preceded the probe's.
fn probe_alive(client: &mut Client) -> Vec<ServerReply> {
    let id = probe_id();
    client.send(&ServerCommand::Stats { id });
    let mut earlier = Vec::new();
    loop {
        let reply = client.recv();
        if matches!(&reply, ServerReply::Stats { id: got, .. } if *got == id) {
            return earlier;
        }
        earlier.push(reply);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary byte chunks (any framing, any encoding, possibly enormous
    /// unterminated lines) never panic or wedge the server: afterwards either
    /// this connection still answers a Stats probe, or the server closed it
    /// cleanly — and a fresh connection always works.
    #[test]
    fn arbitrary_bytes_never_wedge_the_server(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..6),
    ) {
        let mut client = Client::connect(server_addr());
        for chunk in &chunks {
            if client.send_bytes(chunk).is_err() {
                // The server already closed on us (e.g. an oversized line):
                // an acceptable outcome, verified below via a fresh probe.
                break;
            }
        }
        // Terminate any dangling partial line so every complete garbage line
        // has been seen by the parser.
        let _ = client.send_bytes(b"\n");
        let id = probe_id();
        let probe = serde_json::to_string(&ServerCommand::Stats { id }).unwrap();
        let survived = client.send_bytes(format!("{probe}\n").as_bytes()).is_ok()
            && loop {
                match client.try_recv() {
                    None => break false, // clean close mid-garbage is legal
                    Some(ServerReply::Stats { id: got, .. }) if got == id => break true,
                    Some(_) => continue, // error replies to garbage lines
                }
            };
        // Whether or not this connection survived, the server itself must:
        let mut fresh = Client::connect(server_addr());
        probe_alive(&mut fresh);
        let _ = survived;
    }

    /// Every truncated/over-extended mutation of a valid command line draws
    /// exactly one reply (an `Error`, or a real reply when the mutation is
    /// benign) — lines are never swallowed and never answered twice.
    #[test]
    fn truncated_commands_get_exactly_one_reply_each(
        cuts in prop::collection::vec(0usize..=1, 1..5),
        seed in any::<u64>(),
    ) {
        let mut client = Client::connect(server_addr());
        let mut sent = 0usize;
        for (i, &style) in cuts.iter().enumerate() {
            let line = valid_plan_line(probe_id());
            // Strictly shorter than the line: a proper prefix of a JSON
            // object is always invalid, so every reply is a synchronous
            // `Error` (an exact-length cut would be a *valid* plan, whose
            // async reply could legally trail the probe's).
            let cut =
                1 + ((seed as usize).wrapping_mul(31).wrapping_add(i * 7919)) % (line.len() - 1);
            let mutated = match style {
                0 => line[..cut].to_string(),            // truncation
                _ => format!("{}{}", line, &line[..cut]), // trailing garbage
            };
            client.send_line(&mutated);
            sent += 1;
        }
        // One reply per non-blank line, plus the probe's own reply.
        let earlier = probe_alive(&mut client);
        prop_assert_eq!(earlier.len(), sent);
    }

    /// A valid command split at arbitrary byte boundaries (exercising the
    /// incremental framer) interleaved with another connection's garbage:
    /// the split command round-trips intact, the garbage draws errors, and
    /// neither connection sees the other's replies.
    #[test]
    fn interleaved_split_writes_keep_framing_and_routing_intact(
        split in 1usize..40,
        garbage in prop::collection::vec(any::<u8>(), 1..120),
    ) {
        let mut a = Client::connect(server_addr());
        let mut b = Client::connect(server_addr());
        let id = probe_id();
        let line = format!("{}\n", valid_plan_line(id));
        let bytes = line.as_bytes();
        let step = split.min(bytes.len());
        let mut garbage_line = garbage.clone();
        garbage_line.retain(|&byte| byte != b'\n'); // one garbage line exactly
        // The server skips blank lines (after lossy UTF-8 + trim); count
        // whether this garbage line draws a reply at all.
        let answered = !String::from_utf8_lossy(&garbage_line).trim().is_empty();
        garbage_line.push(b'\n');
        for piece in bytes.chunks(step) {
            a.send_bytes(piece).expect("split write");
            b.send_bytes(&garbage_line).expect("garbage write");
        }
        match a.recv() {
            ServerReply::Plan(p) => prop_assert_eq!(p.id, id, "split plan routed intact"),
            other => panic!("expected plan reply on conn A, got {other:?}"),
        }
        // B got one reply per non-blank garbage line (all of them parseable
        // ServerReply JSON), none of them A's plan.
        let replies = probe_alive(&mut b);
        let expected = if answered { bytes.chunks(step).len() } else { 0 };
        prop_assert_eq!(replies.len(), expected);
        for reply in &replies {
            prop_assert!(
                !matches!(reply, ServerReply::Plan(p) if p.id == id),
                "conn B must never see conn A's reply"
            );
        }
    }
}
