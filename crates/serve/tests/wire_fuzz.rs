//! Protocol fuzz against a **live** reactor server: arbitrary bytes,
//! truncated/mutated JSONL, and interleaved split writes across connections
//! must never panic the server, never wedge it (every probe runs under a
//! receive timeout), and always end in an `Error` reply or a clean close.
//!
//! One server instance backs every case (it must survive all of them); each
//! case opens fresh connections against it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ErrorCode, ModelSpec, PlanEngine, PlanRequest, PlanServer, Priority, RateLimitConfig,
    ServerCommand, ServerReply, TokenBucketConfig, TransportConfig,
};

mod common;
use common::Client;

/// Unique Stats ids so concurrent cases never confuse their probe replies.
fn probe_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 32);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The shared fuzz target: spawned once, deliberately leaked (the process
/// exits with the test run). A small `max_line_bytes` keeps oversize-line
/// probes cheap.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let engine = PlanEngine::shared();
        // Pre-warm the one model the valid probes use, so fuzz-case plan
        // replies are cache hits instead of repeated cold planning.
        engine.plan(&valid_request(0)).expect("pre-warm");
        let transport =
            TransportConfig { max_line_bytes: 64 * 1024, ..TransportConfig::default() };
        let server = common::TestServer::spawn(
            PlanServer::with_engine(engine, 2).with_transport(transport),
        );
        let addr = server.addr;
        std::mem::forget(server);
        addr
    })
}

/// Per-connection burst of the rate-limited fuzz target (see
/// [`limited_server_addr`]): small enough that every flood case overflows it.
const LIMITED_BURST: u64 = 4;

/// A second shared fuzz target with overload protection on: two reactors
/// (accepted connections are handed off round-robin) and a tight
/// per-connection token bucket with a 1/s refill — slow enough that a flood
/// case sees at most one refill even on a sluggish runner. Kept separate
/// from [`server_addr`] so sheds never perturb the other cases' reply
/// counting (their probes must never be rate-limited).
fn limited_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let engine = PlanEngine::shared();
        engine.plan(&valid_request(0)).expect("pre-warm");
        let transport = TransportConfig {
            max_line_bytes: 64 * 1024,
            reactors: 2,
            rate_limit: RateLimitConfig {
                per_conn: Some(TokenBucketConfig { rate_per_sec: 1, burst: LIMITED_BURST }),
                per_client: None,
            },
            ..TransportConfig::default()
        };
        let server = common::TestServer::spawn(
            PlanServer::with_engine(engine, 2).with_transport(transport),
        );
        let addr = server.addr;
        std::mem::forget(server);
        addr
    })
}

fn valid_request(id: u64) -> PlanRequest {
    PlanRequest::new(
        id,
        ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
        ClusterSpec::hybrid_small(),
    )
}

fn valid_plan_line(id: u64) -> String {
    serde_json::to_string(&ServerCommand::Plan(valid_request(id))).expect("serializes")
}

/// Round-trip a Stats probe, proving the server (and this connection) is
/// alive and responsive. Replies to earlier garbage may arrive first; they
/// must all parse as [`ServerReply`] (enforced by `Client::recv`). Returns
/// the replies that preceded the probe's.
fn probe_alive(client: &mut Client) -> Vec<ServerReply> {
    let id = probe_id();
    client.send(&ServerCommand::Stats { id });
    let mut earlier = Vec::new();
    loop {
        let reply = client.recv();
        if matches!(&reply, ServerReply::Stats { id: got, .. } if *got == id) {
            return earlier;
        }
        earlier.push(reply);
    }
}

/// A fuzzed command spec: `(kind, id, a, b)` decoded by [`build_command`].
/// Kinds 0..=4 are *synchronous* commands (the reactor answers them inline,
/// so reply counting is race-free); kind 5 is a decorated plan request
/// (answered off the worker pool). Ids stay below the probe-id space
/// (1 << 32), and plan ids (>= 10_000 by construction of the spec range)
/// stay disjoint from fuzzed `Cancel` targets (< 4) so a fuzz cancel can
/// never remove a queued fuzz plan and cost its counted reply.
type CommandSpec = (u8, u64, u32, u32);

fn build_command((kind, id, a, b): CommandSpec) -> ServerCommand {
    match kind {
        0 => ServerCommand::Stats { id },
        1 => ServerCommand::Cancel { id, plan_id: a as u64 },
        2 => ServerCommand::Hello { id, min_v: a, max_v: b },
        3 => ServerCommand::Subscribe { id, adopt: false },
        4 => ServerCommand::Unsubscribe { id },
        // Scheduling decorations off the wire (weight/priority/client_id)
        // must never change the pre-warmed cache key or wedge anything.
        _ => {
            let mut request = valid_request(id);
            request.weight = if a % 2 == 0 { None } else { Some(a) };
            request.priority = match b % 4 {
                0 => None,
                1 => Some(Priority::Interactive),
                2 => Some(Priority::Batch),
                _ => Some(Priority::Background),
            };
            request.client_id = match a % 3 {
                0 => None,
                1 => Some("alpha".into()),
                _ => Some("beta".into()),
            };
            ServerCommand::Plan(request)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary envelope versions: v == 1 serves the command, anything else
    /// draws exactly one structured fault — and never wedges the server.
    #[test]
    fn arbitrary_envelope_versions_fault_or_serve(v in any::<u64>(), id in 0u64..(1 << 31)) {
        let mut client = Client::connect(server_addr());
        client.send_line(&format!(r#"{{"v":{v},"id":{id},"cmd":{{"Stats":{{"id":{id}}}}}}}"#));
        match client.recv() {
            ServerReply::Stats { id: got, .. } => prop_assert_eq!(got, id),
            ServerReply::Fault(error) => {
                prop_assert!(v != 1, "v1 must be served, got fault {error:?}");
                prop_assert_eq!(error.id, Some(id), "fault echoes the envelope id");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        probe_alive(&mut client);
    }

    /// Arbitrary enveloped command mixes (plans, stats, hello, subscribe,
    /// cancel, batches of synchronous commands) each draw their exact reply
    /// count, with every reply enveloped.
    #[test]
    fn enveloped_command_streams_reply_exactly_once_each(
        specs in prop::collection::vec((0u8..6, 10_000u64..(1 << 31), 0u32..4, 0u32..4), 1..8),
        batch_specs in prop::collection::vec((0u8..5, 10_000u64..(1 << 31), 0u32..4, 0u32..4), 0..5),
    ) {
        let mut client = Client::connect(server_addr());
        let mut expected = 0usize;
        for spec in specs {
            client.send_enveloped(&build_command(spec));
            expected += 1;
        }
        // A batch of synchronous commands: one reply per inner command,
        // nothing for the batch itself.
        expected += batch_specs.len();
        let batch_tail: Vec<ServerCommand> = batch_specs.into_iter().map(build_command).collect();
        client.send_enveloped(&ServerCommand::Batch { id: 1 << 31, cmds: batch_tail });
        // Plan replies come off the worker pool and may legally trail the
        // probe's synchronous Stats reply: collect until both the count and
        // the probe are in, in any order.
        let id = probe_id();
        client.send(&ServerCommand::Stats { id });
        let mut counted = 0usize;
        let mut probe_seen = false;
        while counted < expected || !probe_seen {
            match client.recv() {
                ServerReply::Stats { id: got, .. } if got == id => probe_seen = true,
                reply => {
                    prop_assert!(
                        !matches!(reply, ServerReply::Error { .. }),
                        "well-formed enveloped commands never draw legacy errors: {reply:?}"
                    );
                    counted += 1;
                }
            }
        }
        prop_assert_eq!(counted, expected);
    }

    /// Arbitrary byte chunks (any framing, any encoding, possibly enormous
    /// unterminated lines) never panic or wedge the server: afterwards either
    /// this connection still answers a Stats probe, or the server closed it
    /// cleanly — and a fresh connection always works.
    #[test]
    fn arbitrary_bytes_never_wedge_the_server(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..6),
    ) {
        let mut client = Client::connect(server_addr());
        for chunk in &chunks {
            if client.send_bytes(chunk).is_err() {
                // The server already closed on us (e.g. an oversized line):
                // an acceptable outcome, verified below via a fresh probe.
                break;
            }
        }
        // Terminate any dangling partial line so every complete garbage line
        // has been seen by the parser.
        let _ = client.send_bytes(b"\n");
        let id = probe_id();
        let probe = serde_json::to_string(&ServerCommand::Stats { id }).unwrap();
        let survived = client.send_bytes(format!("{probe}\n").as_bytes()).is_ok()
            && loop {
                match client.try_recv() {
                    None => break false, // clean close mid-garbage is legal
                    Some(ServerReply::Stats { id: got, .. }) if got == id => break true,
                    Some(_) => continue, // error replies to garbage lines
                }
            };
        // Whether or not this connection survived, the server itself must:
        let mut fresh = Client::connect(server_addr());
        probe_alive(&mut fresh);
        let _ = survived;
    }

    /// Every truncated/over-extended mutation of a valid command line draws
    /// exactly one reply (an `Error`, or a real reply when the mutation is
    /// benign) — lines are never swallowed and never answered twice.
    #[test]
    fn truncated_commands_get_exactly_one_reply_each(
        cuts in prop::collection::vec(0usize..=1, 1..5),
        seed in any::<u64>(),
    ) {
        let mut client = Client::connect(server_addr());
        let mut sent = 0usize;
        for (i, &style) in cuts.iter().enumerate() {
            let line = valid_plan_line(probe_id());
            // Strictly shorter than the line: a proper prefix of a JSON
            // object is always invalid, so every reply is a synchronous
            // `Error` (an exact-length cut would be a *valid* plan, whose
            // async reply could legally trail the probe's).
            let cut =
                1 + ((seed as usize).wrapping_mul(31).wrapping_add(i * 7919)) % (line.len() - 1);
            let mutated = match style {
                0 => line[..cut].to_string(),            // truncation
                _ => format!("{}{}", line, &line[..cut]), // trailing garbage
            };
            client.send_line(&mutated);
            sent += 1;
        }
        // One reply per non-blank line, plus the probe's own reply.
        let earlier = probe_alive(&mut client);
        prop_assert_eq!(earlier.len(), sent);
    }

    /// Floods against the rate-limited multi-reactor server: every flood
    /// member draws exactly one reply — a plan when admitted, one structured
    /// `rate_limited` fault (enveloped) or its legacy v0 `Error` rendering
    /// (bare lines) when shed. No member is swallowed, none answered twice,
    /// and the shed count matches the bucket arithmetic.
    #[test]
    fn floods_shed_exactly_one_structured_error_per_member(
        extra in 1usize..16,
        enveloped in any::<bool>(),
    ) {
        let mut client = Client::connect(limited_server_addr());
        let n = LIMITED_BURST as usize + extra;
        let ids: Vec<u64> = (0..n).map(|_| probe_id()).collect();
        for &id in &ids {
            let command = ServerCommand::Plan(valid_request(id));
            if enveloped {
                client.send_enveloped(&command);
            } else {
                client.send(&command);
            }
        }
        let mut answered: Vec<u64> = Vec::new();
        let mut shed = 0usize;
        for _ in 0..n {
            match client.recv() {
                ServerReply::Plan(p) => answered.push(p.id),
                ServerReply::Fault(error) => {
                    prop_assert!(enveloped, "bare lines draw the legacy error shape");
                    prop_assert_eq!(error.code, ErrorCode::RateLimited);
                    answered.push(error.id.expect("shed fault echoes the id"));
                    shed += 1;
                }
                ServerReply::Error { id, message } => {
                    prop_assert!(!enveloped, "enveloped commands draw structured faults");
                    prop_assert!(
                        message.contains("rate limit"),
                        "legacy shed must still explain itself: {message:?}"
                    );
                    answered.push(id.expect("shed error echoes the id"));
                    shed += 1;
                }
                other => panic!("unexpected reply to a flood member: {other:?}"),
            }
        }
        answered.sort_unstable();
        let mut expected = ids.clone();
        expected.sort_unstable();
        prop_assert_eq!(answered, expected, "every member answered exactly once");
        // Fresh bucket of LIMITED_BURST, 1/s refill: at most one refill can
        // land mid-flood, so at least `extra - 1` members must have shed.
        prop_assert!(
            shed >= extra.saturating_sub(1),
            "flood of {n} against burst {LIMITED_BURST} shed only {shed}"
        );
    }

    /// A flood on one connection of the rate-limited multi-reactor server
    /// must not leak replies into a well-behaved connection on the other
    /// reactor: the quiet connection gets exactly its own plan, the flooder
    /// gets exactly its own mix of plans and sheds, framing intact on both.
    #[test]
    fn flood_replies_never_leak_across_reactors(split in 1usize..40) {
        let mut quiet = Client::connect(limited_server_addr());
        let mut flooder = Client::connect(limited_server_addr());
        let quiet_id = probe_id();
        let flood_ids: Vec<u64> =
            (0..LIMITED_BURST as usize + 8).map(|_| probe_id()).collect();
        for &id in &flood_ids {
            flooder.send(&ServerCommand::Plan(valid_request(id)));
        }
        // The quiet connection's single request arrives split at arbitrary
        // byte boundaries while the flood is in flight.
        let line = format!("{}\n", valid_plan_line(quiet_id));
        let bytes = line.as_bytes();
        for piece in bytes.chunks(split.min(bytes.len())) {
            quiet.send_bytes(piece).expect("split write");
        }
        match quiet.recv() {
            ServerReply::Plan(p) => prop_assert_eq!(p.id, quiet_id, "split plan routed intact"),
            other => panic!("the quiet connection's only send must be admitted, got {other:?}"),
        }
        let mut answered: Vec<u64> = Vec::new();
        for _ in 0..flood_ids.len() {
            match flooder.recv() {
                ServerReply::Plan(p) => {
                    prop_assert!(p.id != quiet_id, "flooder saw the quiet conn's reply");
                    answered.push(p.id);
                }
                ServerReply::Error { id, .. } => answered.push(id.expect("shed echoes the id")),
                other => panic!("unexpected reply on the flooder: {other:?}"),
            }
        }
        answered.sort_unstable();
        let mut expected = flood_ids.clone();
        expected.sort_unstable();
        prop_assert_eq!(answered, expected);
    }

    /// A valid command split at arbitrary byte boundaries (exercising the
    /// incremental framer) interleaved with another connection's garbage:
    /// the split command round-trips intact, the garbage draws errors, and
    /// neither connection sees the other's replies.
    #[test]
    fn interleaved_split_writes_keep_framing_and_routing_intact(
        split in 1usize..40,
        garbage in prop::collection::vec(any::<u8>(), 1..120),
    ) {
        let mut a = Client::connect(server_addr());
        let mut b = Client::connect(server_addr());
        let id = probe_id();
        let line = format!("{}\n", valid_plan_line(id));
        let bytes = line.as_bytes();
        let step = split.min(bytes.len());
        let mut garbage_line = garbage.clone();
        garbage_line.retain(|&byte| byte != b'\n'); // one garbage line exactly
        // The server skips blank lines (after lossy UTF-8 + trim); count
        // whether this garbage line draws a reply at all.
        let answered = !String::from_utf8_lossy(&garbage_line).trim().is_empty();
        garbage_line.push(b'\n');
        for piece in bytes.chunks(step) {
            a.send_bytes(piece).expect("split write");
            b.send_bytes(&garbage_line).expect("garbage write");
        }
        match a.recv() {
            ServerReply::Plan(p) => prop_assert_eq!(p.id, id, "split plan routed intact"),
            other => panic!("expected plan reply on conn A, got {other:?}"),
        }
        // B got one reply per non-blank garbage line (all of them parseable
        // ServerReply JSON), none of them A's plan.
        let replies = probe_alive(&mut b);
        let expected = if answered { bytes.chunks(step).len() } else { 0 };
        prop_assert_eq!(replies.len(), expected);
        for reply in &replies {
            prop_assert!(
                !matches!(reply, ServerReply::Plan(p) if p.id == id),
                "conn B must never see conn A's reply"
            );
        }
    }
}
