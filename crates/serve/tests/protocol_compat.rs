//! Protocol-compatibility replay: every line of the committed golden corpus
//! (crates/api/tests/golden/) is replayed lock-step against a live reactor
//! server, and the replies — normalized for the only volatile fields — must
//! be **byte-identical** to the committed expectation files. The legacy (v0)
//! half of this pins the guarantee that pre-envelope clients observe exactly
//! the pre-envelope server's bytes.
//!
//! Normalization (documented, mechanical): `elapsed_us` values are zeroed
//! (wall-clock), `sched` objects inside `Stats` replies are nulled (the
//! `completed`/`active` counters race the worker's dispatch-drop by design),
//! and `metrics` payloads are nulled (latency histograms are wall-clock
//! through and through; the snapshot's *shape* is pinned by `qsync-obs`'s
//! own tests). Everything else — plans, fingerprints, error strings, cache
//! counters — is deterministic and compared verbatim.
//!
//! Regenerate after an intentional change with
//! `QSYNC_REGEN_GOLDEN=1 cargo test -p qsync-serve --test protocol_compat`
//! (CI replays this suite against a release build as the compat smoke).

use std::path::PathBuf;

use qsync_api::{parse_line, render_reply, ServerCommand, ServerReply};
use qsync_serve::PlanServer;

mod common;
use common::TestServer;

fn api_golden(name: &str) -> Vec<String> {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../api/tests/golden").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing corpus {}: {e}", path.display()))
        .lines()
        .map(str::to_owned)
        .collect()
}

fn replies_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Zero wall-clock fields and null the racy scheduler snapshot, in place.
fn scrub(value: &mut serde::Value) {
    match value {
        serde::Value::Object(pairs) => {
            for (key, val) in pairs.iter_mut() {
                match key.as_str() {
                    "elapsed_us" => *val = serde::Value::Number(serde::Number::U64(0)),
                    "sched" | "metrics" => *val = serde::Value::Null,
                    _ => scrub(val),
                }
            }
        }
        serde::Value::Array(items) => {
            for item in items.iter_mut() {
                scrub(item);
            }
        }
        _ => {}
    }
}

fn normalize(line: &str) -> String {
    let mut value: serde::Value = serde_json::from_str(line).expect("reply line is JSON");
    scrub(&mut value);
    serde_json::to_string(&value).expect("normalized reply serializes")
}

/// How many reply lines one corpus line draws: one per command, one per
/// inner command of a batch, one for an unparseable line.
fn reply_count(line: &str) -> usize {
    match parse_line(line) {
        Ok(parsed) => match parsed.cmd {
            ServerCommand::Batch { cmds, .. } => cmds.len(),
            _ => 1,
        },
        Err(_) => 1,
    }
}

/// Replay `lines` lock-step (send one line, read its replies) against a
/// fresh single-worker server, returning the normalized reply lines.
fn replay(lines: &[String]) -> Vec<String> {
    let server = TestServer::spawn(PlanServer::new(1));
    let mut client = server.client();
    let mut replies = Vec::new();
    for line in lines {
        client.send_line(line);
        for _ in 0..reply_count(line) {
            // Re-render the parsed reply? No — pin the raw bytes: read the
            // raw line to compare exactly what went over the wire.
            let raw = client.raw_line();
            replies.push(normalize(&raw));
        }
    }
    server.stop();
    replies
}

fn check_against(name: &str, got: Vec<String>) {
    let path = replies_path(name);
    if std::env::var_os("QSYNC_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, got.join("\n") + "\n").expect("write expected replies");
    }
    let expected: Vec<String> = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing expected replies {}: {e}", path.display()))
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(got.len(), expected.len(), "{name}: reply count drifted");
    for (i, (got, expected)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            got, expected,
            "{name}: normalized reply {i} is not byte-identical to the committed expectation"
        );
    }
}

#[test]
fn v0_golden_lines_draw_byte_identical_replies() {
    check_against("v0_replies.jsonl", replay(&api_golden("v0_lines.jsonl")));
}

#[test]
fn v1_golden_lines_draw_byte_identical_replies() {
    check_against("v1_replies.jsonl", replay(&api_golden("v1_lines.jsonl")));
}

#[test]
fn unparseable_lines_draw_exactly_the_shims_error_bytes() {
    // The server's reply to garbage must be exactly what the shared shim
    // produces — proving the serving path adds nothing of its own.
    let server = TestServer::spawn(PlanServer::new(1));
    let mut client = server.client();
    for junk in ["this is not json", r#"{"Nope":{"id":1}}"#, "[1,2,3]", r#"{"v":99,"id":4,"cmd":{"Stats":{"id":4}}}"#] {
        client.send_line(junk);
        let raw = client.raw_line();
        let shim = parse_line(junk).expect_err("junk must not parse");
        let expected = render_reply(shim.wire, &ServerReply::Fault(shim.error));
        assert_eq!(raw, expected, "server reply to {junk:?} diverged from the shim");
    }
    // v0 garbage renders in the legacy shape specifically.
    client.send_line("not json either");
    let raw = client.raw_line();
    assert!(raw.starts_with(r#"{"Error":{"id":null,"message":"unparseable command: "#), "{raw}");
    server.stop();
}
