//! Shared helpers for the serve integration tests: spawn a reactor-backed
//! TCP server on an ephemeral port and talk the protocol to it through
//! `qsync-client` (the hand-rolled socket/JSONL plumbing this module used to
//! carry now lives there, typed and reusable).

#![allow(dead_code)]

use std::net::{SocketAddr, TcpListener};
use std::thread::JoinHandle;
use std::time::Duration;

use qsync_client::{ClientError, RawClient};
use qsync_serve::{PlanServer, ServerCommand, ServerReply, ShutdownSignal};

/// How long a client waits for one reply line before declaring the server
/// wedged.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A [`PlanServer`] running its TCP reactor on a background thread; shuts
/// down (and joins) on drop.
pub struct TestServer {
    /// The ephemeral address the server listens on.
    pub addr: SocketAddr,
    shutdown: ShutdownSignal,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// Bind an ephemeral port and serve `server` on it.
    pub fn spawn(server: PlanServer) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = ShutdownSignal::new();
        let signal = shutdown.clone();
        let thread =
            std::thread::spawn(move || server.serve_listener(listener, signal));
        TestServer { addr, shutdown, thread: Some(thread) }
    }

    /// Open a (legacy-speaking) protocol client against this server.
    pub fn client(&self) -> Client {
        Client::connect(self.addr)
    }

    /// Open a typed blocking client (v1, `Hello`-handshaken).
    pub fn typed_client(&self) -> qsync_client::Client {
        qsync_client::Client::connect_timeout(self.addr, RECV_TIMEOUT)
            .expect("typed client connects")
    }

    /// Open a multiplexing client.
    pub fn mux_client(&self) -> qsync_client::MuxClient {
        qsync_client::MuxClient::connect(self.addr).expect("mux client connects")
    }

    /// Fire the shutdown signal and join the reactor thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shutdown.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread panicked").expect("server failed");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The legacy-line test client: a thin panicking facade over
/// [`qsync_client::RawClient`], keeping the pre-extraction test API (send a
/// bare command, expect a reply or a clean close).
pub struct Client {
    raw: RawClient,
}

impl Client {
    /// Connect to `addr` with the test receive timeout.
    pub fn connect(addr: SocketAddr) -> Client {
        Client { raw: RawClient::connect_timeout(addr, RECV_TIMEOUT).expect("connect") }
    }

    /// Send one raw line (a `\n` is appended), as a single write.
    pub fn send_line(&mut self, line: &str) {
        self.raw.send_line(line).expect("write line");
    }

    /// Send raw bytes as-is (fuzzing: no framing added).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.raw.send_bytes(bytes)
    }

    /// Send one command as a legacy (v0) line.
    pub fn send(&mut self, command: &ServerCommand) {
        self.raw.send_legacy(command).expect("write command");
    }

    /// Send one command inside a v1 envelope.
    pub fn send_enveloped(&mut self, command: &ServerCommand) {
        self.raw.send_enveloped(command).expect("write envelope");
    }

    /// Receive one reply line, panicking on timeout (a deadlocked server
    /// must fail the test, not hang it) and on EOF.
    pub fn recv(&mut self) -> ServerReply {
        match self.try_recv() {
            Some(reply) => reply,
            None => panic!("server closed the connection while a reply was expected"),
        }
    }

    /// Receive one reply line; `None` on clean EOF. Panics on timeout.
    pub fn try_recv(&mut self) -> Option<ServerReply> {
        match self.raw.try_recv() {
            Ok(reply) => reply,
            Err(ClientError::Io(e)) => panic!("no reply within {RECV_TIMEOUT:?}: {e}"),
            Err(e) => panic!("reply did not parse: {e}"),
        }
    }

    /// Receive one raw reply line (no trailing newline), unparsed — for
    /// byte-level protocol assertions. Panics on timeout or EOF.
    pub fn raw_line(&mut self) -> String {
        match self.raw.recv_raw_line() {
            Ok(Some(line)) => line,
            Ok(None) => panic!("server closed the connection while a reply was expected"),
            Err(e) => panic!("no reply within {RECV_TIMEOUT:?}: {e}"),
        }
    }

    /// Close the write side, signalling EOF to the server.
    pub fn finish_writes(&mut self) {
        self.raw.finish_writes();
    }
}
