//! Shared helpers for the serve integration tests: spawn a reactor-backed
//! TCP server on an ephemeral port and talk the JSONL protocol to it with
//! timeouts (so a server bug fails the test instead of hanging it).

#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use qsync_serve::{PlanServer, ServerCommand, ServerReply, ShutdownSignal};

/// How long a client waits for one reply line before declaring the server
/// wedged.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A [`PlanServer`] running its TCP reactor on a background thread; shuts
/// down (and joins) on drop.
pub struct TestServer {
    /// The ephemeral address the server listens on.
    pub addr: SocketAddr,
    shutdown: ShutdownSignal,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// Bind an ephemeral port and serve `server` on it.
    pub fn spawn(server: PlanServer) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = ShutdownSignal::new();
        let signal = shutdown.clone();
        let thread =
            std::thread::spawn(move || server.serve_listener(listener, signal));
        TestServer { addr, shutdown, thread: Some(thread) }
    }

    /// Open a protocol client against this server.
    pub fn client(&self) -> Client {
        Client::connect(self.addr)
    }

    /// Fire the shutdown signal and join the reactor thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shutdown.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread panicked").expect("server failed");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// A blocking JSONL protocol client with receive timeouts.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_read_timeout(Some(RECV_TIMEOUT)).expect("read timeout");
        writer.set_write_timeout(Some(RECV_TIMEOUT)).expect("write timeout");
        // Request lines must leave as one segment: Nagle + the peer's
        // delayed ACK would otherwise add ~40 ms to every round-trip.
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// Send one raw line (a `\n` is appended), as a single write.
    pub fn send_line(&mut self, line: &str) {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed).expect("write line");
    }

    /// Send raw bytes as-is (fuzzing: no framing added).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Send one command.
    pub fn send(&mut self, command: &ServerCommand) {
        self.send_line(&serde_json::to_string(command).expect("command serializes"));
    }

    /// Receive one reply line, panicking on timeout (a deadlocked server
    /// must fail the test, not hang it) and on EOF.
    pub fn recv(&mut self) -> ServerReply {
        match self.try_recv() {
            Some(reply) => reply,
            None => panic!("server closed the connection while a reply was expected"),
        }
    }

    /// Receive one reply line; `None` on clean EOF. Panics on timeout.
    pub fn try_recv(&mut self) -> Option<ServerReply> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(serde_json::from_str(&line).expect("reply parses")),
            Err(e) => panic!("no reply within {RECV_TIMEOUT:?}: {e}"),
        }
    }

    /// Close the write side, signalling EOF to the server.
    pub fn finish_writes(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}
