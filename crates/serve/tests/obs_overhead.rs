//! The overhead guard: "cheap enough for the hot path" is enforced, not
//! asserted. Cache-hit serving — the hottest instrumented path (latency
//! histogram record, trace branch, cache counters) — is timed with the
//! instruments recording and with them compiled down to a branch
//! ([`ServeObs::disabled`]); recording may not cost more than a few percent.
//!
//! Timing on a shared 1-core CI host is noisy, so the measurement is damped:
//! several interleaved trials per configuration, best trial wins (the
//! minimum per-op time is the one least polluted by scheduler preemption),
//! and a small absolute floor keeps sub-microsecond jitter from failing a
//! ratio computed over ~30 µs operations.

use std::sync::Arc;
use std::time::Instant;

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{ModelSpec, PlanEngine, PlanOutcome, PlanRequest, ServeObs};

const ITERS: u32 = 4_000;
const TRIALS: u32 = 5;

/// Best-of-trials nanoseconds per cache hit on `engine`.
fn best_ns_per_hit(engine: &PlanEngine, request: &PlanRequest) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for _ in 0..ITERS {
            let response = engine.plan(request).expect("valid request");
            assert_eq!(response.outcome, PlanOutcome::CacheHit);
        }
        best = best.min(started.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

#[test]
fn metrics_recording_costs_at_most_three_percent_of_hit_serving() {
    let request = PlanRequest::new(
        0,
        ModelSpec::SmallMlp { batch: 16, in_features: 32, hidden: 64, classes: 8 },
        ClusterSpec::hybrid_small(),
    );
    let enabled = PlanEngine::new();
    let disabled = PlanEngine::new().with_obs(Arc::new(ServeObs::disabled()));
    assert!(enabled.obs().is_enabled());
    assert!(!disabled.obs().is_enabled());
    enabled.plan(&request).expect("warm the enabled engine");
    disabled.plan(&request).expect("warm the disabled engine");

    // Interleave whole measurement passes so a background load spike hits
    // both configurations, then keep each one's best.
    let mut on = f64::INFINITY;
    let mut off = f64::INFINITY;
    for _ in 0..2 {
        on = on.min(best_ns_per_hit(&enabled, &request));
        off = off.min(best_ns_per_hit(&disabled, &request));
    }

    // 3% relative, with a 2 µs absolute floor so one preempted timeslice on
    // a busy single-core host cannot fail the ratio. The claim is about the
    // optimized record path; unoptimized builds pay real function-call cost
    // per instrument, so debug only guards against something egregious
    // (a lock or allocation on the hot path blows far past 25%).
    let (relative, floor_ns) = if cfg!(debug_assertions) { (0.25, 5_000.0) } else { (0.03, 2_000.0) };
    let budget_ns = (off * relative).max(floor_ns);
    assert!(
        on <= off + budget_ns,
        "instrumented hit serving is too slow: {on:.0} ns/hit vs {off:.0} ns/hit disabled \
         (budget {budget_ns:.0} ns)"
    );
}
