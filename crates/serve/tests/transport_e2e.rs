//! End-to-end tests of the reactor transport: connection scale (≥ 1000 idle
//! connections on one reactor thread, a 256→10k multi-reactor sweep in the
//! release-mode smoke), accept-and-hand-off distribution across reactors,
//! cross-connection fairness under one shared scheduler, cancel scoping, the
//! non-blocking `Stats` path, framing limits and graceful shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, ModelSpec, PlanEngine, PlanOutcome, PlanRequest, PlanServer,
    Priority, ServerCommand, ServerReply, TransportConfig,
};

mod common;
use common::{Client, TestServer};

fn mlp() -> ModelSpec {
    ModelSpec::SmallMlp { batch: 16, in_features: 32, hidden: 64, classes: 8 }
}

/// A heavier cold plan (a few ms even in release builds) for occupying the
/// worker pool deterministically.
fn resnet_variant(id: u64, batch: usize, cluster: &ClusterSpec) -> PlanRequest {
    PlanRequest::new(id, ModelSpec::Resnet50 { batch, image: 32 }, cluster.clone())
}

/// The acceptance-scale test: hold 1000 concurrent idle TCP connections on
/// the reactor, then complete a plan round-trip on every one of them, with
/// replies routed back to the right connection.
#[test]
fn thousand_idle_connections_round_trip() {
    const CONNS: usize = 1000;
    const WRITERS: usize = 8;
    // 1000 client sockets + 1000 accepted sockets + listener/epoll slack.
    let limit = qsync_serve::transport::ensure_fd_limit((CONNS * 2 + 128) as u64)
        .expect("raise fd limit");
    assert!(limit >= (CONNS * 2 + 128) as u64, "fd limit too low for the test: {limit}");

    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    let warm = PlanRequest::new(0, mlp(), cluster.clone());
    engine.plan(&warm).expect("pre-warm the cache");
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 4));

    // Phase 1: connect everything and hold the sockets open concurrently.
    let mut clients: Vec<Client> = (0..CONNS).map(|_| server.client()).collect();

    // Phase 2: with all 1000 still connected, one round-trip per connection.
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (w, chunk) in clients.chunks_mut(CONNS.div_ceil(WRITERS)).enumerate() {
            let cluster = cluster.clone();
            let done = &done;
            scope.spawn(move || {
                for (i, client) in chunk.iter_mut().enumerate() {
                    let id = (w * 10_000 + i) as u64;
                    client.send(&ServerCommand::Plan(PlanRequest::new(id, mlp(), cluster.clone())));
                    match client.recv() {
                        ServerReply::Plan(p) => {
                            assert_eq!(p.id, id, "reply routed to the wrong connection");
                            assert_eq!(p.outcome, PlanOutcome::CacheHit);
                        }
                        other => panic!("expected plan reply, got {other:?}"),
                    }
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), CONNS);
    assert!(engine.cache().stats().hits >= CONNS as u64, "every round-trip was a cache hit");
    drop(clients);
    server.stop();
}

/// Multi-reactor hand-off: with N reactors, accepted connections are spread
/// off the acceptor (least-loaded by default, which deals evenly from an
/// empty ring), every round-trip still routes its reply to the submitting
/// connection, and the per-reactor gauges account for every open
/// connection — no reactor is left idle.
#[test]
fn multi_reactor_hand_off_distributes_and_routes_replies() {
    const CONNS: usize = 60;
    const REACTORS: usize = 3;
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    engine.plan(&PlanRequest::new(0, mlp(), cluster.clone())).expect("pre-warm");
    let transport = TransportConfig { reactors: REACTORS, ..TransportConfig::default() };
    let server = TestServer::spawn(
        PlanServer::with_engine(Arc::clone(&engine), 2).with_transport(transport),
    );

    let mut clients: Vec<Client> = (0..CONNS).map(|_| server.client()).collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let id = 1000 + i as u64;
        client.send(&ServerCommand::Plan(PlanRequest::new(id, mlp(), cluster.clone())));
        match client.recv() {
            ServerReply::Plan(p) => {
                assert_eq!(p.id, id, "reply routed to the wrong connection");
                assert_eq!(p.outcome, PlanOutcome::CacheHit);
            }
            other => panic!("expected plan reply, got {other:?}"),
        }
    }

    // All connections still open: the per-reactor gauges must cover every
    // one of them, spread evenly (from an empty ring the least-loaded
    // hand-off deals like a round robin).
    let mut probe = server.client();
    probe.send(&ServerCommand::Metrics { id: 1 });
    let ServerReply::Metrics { metrics, .. } = probe.recv() else { panic!("metrics reply") };
    let per_reactor: Vec<i64> = (0..REACTORS)
        .map(|r| {
            let name = format!("qsync_transport_reactor_conns{{reactor=\"{r}\"}}");
            metrics
                .gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
                .unwrap_or_else(|| panic!("gauge {name} missing"))
        })
        .collect();
    let open: i64 = per_reactor.iter().sum();
    assert_eq!(open, CONNS as i64 + 1, "gauges must cover every open connection + the probe");
    for (reactor, &count) in per_reactor.iter().enumerate() {
        assert!(
            count >= (CONNS / REACTORS) as i64,
            "reactor {reactor} holds {count} of {CONNS} connections; distribution {per_reactor:?}"
        );
    }
    let handoffs = metrics
        .counters
        .iter()
        .find(|c| c.name == "qsync_transport_reactor_handoffs_total")
        .map(|c| c.value)
        .unwrap_or(0);
    assert!(
        handoffs >= (CONNS - CONNS / REACTORS) as u64,
        "acceptor must hand off all but its own share (saw {handoffs})"
    );

    drop(clients);
    drop(probe);
    server.stop();
}

/// Least-loaded hand-off rebalances after churn: when every connection on
/// one reactor closes, the next accepted connections all refill that
/// drained reactor instead of being dealt blindly across the ring (a round
/// robin would leave it under-filled — its cursor ignores load).
#[test]
fn least_loaded_handoff_refills_drained_reactor_after_churn() {
    const REACTORS: usize = 3;
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    engine.plan(&PlanRequest::new(0, mlp(), cluster.clone())).expect("pre-warm");
    let transport = TransportConfig { reactors: REACTORS, ..TransportConfig::default() };
    assert_eq!(transport.handoff, qsync_serve::HandoffPolicy::LeastLoaded, "default policy");
    let server = TestServer::spawn(
        PlanServer::with_engine(Arc::clone(&engine), 2).with_transport(transport),
    );

    let per_reactor = |probe: &mut Client| -> Vec<i64> {
        probe.send(&ServerCommand::Metrics { id: 1 });
        let ServerReply::Metrics { metrics, .. } = probe.recv() else { panic!("metrics reply") };
        (0..REACTORS)
            .map(|r| {
                let name = format!("qsync_transport_reactor_conns{{reactor=\"{r}\"}}");
                metrics.gauges.iter().find(|g| g.name == name).map(|g| g.value).unwrap_or(0)
            })
            .collect()
    };
    // Round-trip straight after connecting so each connection is registered
    // (its gauge counted) before the next accept picks a target: placement
    // is then deterministic — all loads tied resolves to the lowest index.
    let connect_registered = |server: &TestServer, id: u64| -> Client {
        let mut client = server.client();
        client.send(&ServerCommand::Plan(PlanRequest::new(id, mlp(), cluster.clone())));
        match client.recv() {
            ServerReply::Plan(p) => assert_eq!(p.id, id),
            other => panic!("expected plan reply, got {other:?}"),
        }
        client
    };

    // Probe lands on reactor 0; eight clients then deal 1,2,0,1,2,0,1,2 —
    // reactor 1 holds exactly clients 0, 3 and 6.
    let mut probe = server.client();
    assert_eq!(per_reactor(&mut probe).iter().sum::<i64>(), 1, "probe registered");
    let mut clients: Vec<Option<Client>> =
        (0..8).map(|i| Some(connect_registered(&server, 100 + i))).collect();
    assert_eq!(per_reactor(&mut probe), vec![3, 3, 3], "even deal from an empty ring");

    // Close everything on reactor 1 and wait for the reaps.
    for i in [0usize, 3, 6] {
        clients[i] = None;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let drained = loop {
        let counts = per_reactor(&mut probe);
        if counts.iter().sum::<i64>() == 6 {
            break counts;
        }
        assert!(Instant::now() < deadline, "closed connections never reaped: {counts:?}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(drained, vec![3, 0, 3], "reactor 1 drained");

    // Three new connections must all refill reactor 1.
    let refill: Vec<Client> = (0..3).map(|i| connect_registered(&server, 200 + i)).collect();
    assert_eq!(
        per_reactor(&mut probe),
        vec![3, 3, 3],
        "least-loaded hand-off must refill the drained reactor"
    );

    drop(refill);
    drop(clients);
    drop(probe);
    server.stop();
}

/// The 10k-connection release-mode smoke: sweep 256 → 10240 connections on a
/// multi-reactor server; at every rung, hold all sockets open concurrently
/// and complete one reply-routed round-trip per connection. On a
/// multi-core, uncontended runner the p99 round-trip latency must stay flat
/// (within 10× of the 256-conn rung); on a contended runner (fewer than 4
/// cores) the latency gate is skipped and only the functional assertions
/// hold. The top rung adapts to the process fd budget — the sweep never
/// silently drops below 4096.
#[test]
#[ignore = "release-mode scale smoke (256→10k sweep); run explicitly — see ci.yml"]
fn ten_thousand_connection_sweep_keeps_p99_flat() {
    const TARGET: usize = 10_240;
    const WRITERS: usize = 16;
    let limit = qsync_serve::transport::ensure_fd_limit((TARGET * 3 + 512) as u64)
        .expect("raise fd limit");
    // Three fds per connection — the test client's socket, its dup'd
    // buffered-reader handle, and the server's accepted socket — plus
    // listener/epoll slack.
    let max_conns = TARGET.min((limit.saturating_sub(512) / 3) as usize);
    assert!(max_conns >= 4096, "fd budget too small for a scale smoke: limit {limit}");
    let mut sweep: Vec<usize> = [256usize, 1024, 4096, TARGET]
        .iter()
        .map(|&n| n.min(max_conns))
        .collect();
    sweep.dedup();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    engine.plan(&PlanRequest::new(0, mlp(), cluster.clone())).expect("pre-warm");
    let transport = TransportConfig { reactors: cores.clamp(2, 4), ..TransportConfig::default() };
    let server = TestServer::spawn(
        PlanServer::with_engine(Arc::clone(&engine), 4).with_transport(transport),
    );

    // Waits until the server has reaped the previous rung's sockets (only
    // `slack` others may remain open). Client drops close asynchronously —
    // without this barrier, rung N+1's connect flood races rung N's
    // server-side EOF handling for the shared fd budget.
    let wait_for_reap = |probe: &mut Client, slack: i64| {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            probe.send(&ServerCommand::Metrics { id: 7 });
            let ServerReply::Metrics { metrics, .. } = probe.recv() else {
                panic!("metrics reply")
            };
            let open = metrics
                .gauges
                .iter()
                .find(|g| g.name == "qsync_transport_conns_open")
                .map(|g| g.value)
                .unwrap_or(0);
            if open <= slack + 1 {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server still holds {open} connections long after the rung dropped its clients"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut probe = server.client();
    let mut p99_us: Vec<(usize, u64)> = Vec::new();
    for &conns in &sweep {
        wait_for_reap(&mut probe, 0);
        let started = Instant::now();
        let mut clients: Vec<Client> = (0..conns).map(|_| server.client()).collect();
        let connected = started.elapsed();
        let latencies = std::sync::Mutex::new(Vec::<u64>::with_capacity(conns));
        std::thread::scope(|scope| {
            for (w, chunk) in clients.chunks_mut(conns.div_ceil(WRITERS)).enumerate() {
                let cluster = cluster.clone();
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(chunk.len());
                    for (i, client) in chunk.iter_mut().enumerate() {
                        let id = (w * 100_000 + i) as u64;
                        let begin = Instant::now();
                        client.send(&ServerCommand::Plan(PlanRequest::new(
                            id,
                            mlp(),
                            cluster.clone(),
                        )));
                        match client.recv() {
                            ServerReply::Plan(p) => {
                                assert_eq!(p.id, id, "reply routed to the wrong connection");
                                assert_eq!(p.outcome, PlanOutcome::CacheHit);
                            }
                            other => panic!("expected plan reply, got {other:?}"),
                        }
                        mine.push(begin.elapsed().as_micros() as u64);
                    }
                    latencies.lock().unwrap().extend(mine);
                });
            }
        });
        let mut latencies = latencies.into_inner().unwrap();
        assert_eq!(latencies.len(), conns, "every connection completed its round-trip");
        latencies.sort_unstable();
        let p99 = latencies[(latencies.len() - 1) * 99 / 100];
        eprintln!(
            "{conns} conns: connect {:?}, round-trips {:?}, p99 {p99} us",
            connected,
            started.elapsed() - connected
        );
        p99_us.push((conns, p99));
        drop(clients);
    }

    if cores >= 4 {
        let (base_conns, base) = p99_us[0];
        let &(top_conns, top) = p99_us.last().unwrap();
        // Flatness gate: scaling connections 40× may not blow up tail
        // latency. The 2 ms absolute floor keeps micro-latency jitter on
        // fast machines from tripping a ratio that means nothing there.
        assert!(
            top <= base.saturating_mul(10).max(2_000),
            "p99 regressed across the sweep: {base} us at {base_conns} conns -> \
             {top} us at {top_conns} conns"
        );
    } else {
        eprintln!("contended runner ({cores} cores): skipping the p99 flatness gate");
    }
    drop(probe);
    server.stop();
}

/// PR 3's explicit follow-up, now structural: two TCP connections share one
/// scheduler, so a background-class flood from one client cannot starve
/// another client's interactive requests.
#[test]
fn background_flood_does_not_starve_interactive_client() {
    const FLOOD: u64 = 120;
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 2));

    // Client A: pipeline a flood of background plans without reading a
    // single reply. Each carries a unique throughput tolerance, so every one
    // is a distinct cache key — 120 real cold resnet plans of queued work.
    let mut flood = server.client();
    let mut batch = String::new();
    for i in 0..FLOOD {
        let mut request = resnet_variant(i, 2, &cluster);
        request.throughput_tolerance = Some(0.1 + i as f64 * 1e-6);
        request.priority = Some(Priority::Background);
        request.client_id = Some("flood".into());
        batch.push_str(&serde_json::to_string(&ServerCommand::Plan(request)).unwrap());
        batch.push('\n');
    }
    flood.send_bytes(batch.as_bytes()).expect("flood written");

    // Client B: wait until the shared scheduler has admitted the whole flood
    // (proving B's stats see A's submissions — one scheduler, not one per
    // connection) while it is still far from drained.
    let mut interactive = server.client();
    let deadline = Instant::now() + Duration::from_secs(60);
    let backlog = loop {
        interactive.send(&ServerCommand::Stats { id: 9000 });
        let ServerReply::Stats { sched: Some(sched), .. } = interactive.recv() else {
            panic!("stats reply")
        };
        if sched.background.submitted == FLOOD {
            break sched.background;
        }
        assert!(Instant::now() < deadline, "flood was never admitted: {sched:?}");
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(
        backlog.completed < FLOOD,
        "flood drained before the interactive phase began; grow FLOOD"
    );

    // Client B again: interactive requests must overtake the queued flood.
    let mut latencies_us: Vec<u64> = Vec::new();
    for i in 0..20u64 {
        let started = Instant::now();
        interactive.send(&ServerCommand::Plan(PlanRequest::new(8000 + i, mlp(), cluster.clone())));
        match interactive.recv() {
            ServerReply::Plan(p) => assert_eq!(p.id, 8000 + i),
            other => panic!("expected plan reply, got {other:?}"),
        }
        latencies_us.push(started.elapsed().as_micros() as u64);
        if i == 0 {
            // Non-starvation, structurally: the first interactive round-trip
            // completed while the flood (hundreds of milliseconds of queued
            // cold planning) was still draining — under the old
            // per-connection FIFO it would have waited out the whole flood.
            interactive.send(&ServerCommand::Stats { id: 9001 });
            let ServerReply::Stats { sched: Some(sched), .. } = interactive.recv() else {
                panic!("stats reply")
            };
            assert_eq!(sched.background.submitted, FLOOD);
            assert!(
                sched.background.completed < FLOOD,
                "the first interactive request should overtake the {FLOOD}-plan flood \
                 (completed {} of {FLOOD})",
                sched.background.completed
            );
        }
    }
    latencies_us.sort_unstable();
    let p99 = latencies_us[(latencies_us.len() - 1) * 99 / 100];

    interactive.send(&ServerCommand::Stats { id: 9002 });
    let ServerReply::Stats { sched: Some(sched), .. } = interactive.recv() else {
        panic!("stats reply")
    };
    assert_eq!(sched.background.submitted, FLOOD, "one scheduler serves both connections");
    // `dispatched` is ordered before each reply; `completed` (counted at
    // dispatch drop) may lag the last reply by a hair.
    assert!(sched.interactive.dispatched >= 20, "interactive class served B's requests");
    eprintln!(
        "interactive p99 {p99} us with {} of {FLOOD} background jobs still pending",
        FLOOD - sched.background.completed.min(FLOOD)
    );
    // Sanity ceiling (generous for debug builds + CI): an interactive
    // request must never wait out the whole flood.
    assert!(p99 < 10_000_000, "interactive p99 {p99} us looks starved");
}

/// `Cancel` acts on the submitting connection's queue only: another
/// connection naming the same plan id gets `cancelled: false`, the owner
/// gets `cancelled: true` and the queued plan produces no reply.
#[test]
fn cancel_is_scoped_to_the_submitting_connection() {
    let cluster = ClusterSpec::cluster_a(1, 1);
    let server = TestServer::spawn(PlanServer::new(1)); // one worker: plans queue
    let mut owner = server.client();
    let mut other = server.client();

    // Occupy the single worker with a run of cold plans, then queue the
    // cancel target behind them (same connection ⇒ same DRR queue ⇒ FIFO).
    for i in 0..10u64 {
        owner.send(&ServerCommand::Plan(resnet_variant(100 + i, 1 + i as usize, &cluster)));
    }
    owner.send(&ServerCommand::Plan(PlanRequest::new(7, mlp(), cluster.clone())));

    // Another connection cannot reach it.
    other.send(&ServerCommand::Cancel { id: 1, plan_id: 7 });
    assert_eq!(
        other.recv(),
        ServerReply::Cancelled { id: 1, plan_id: 7, cancelled: false },
        "a plan queued by another connection must be out of reach"
    );

    // The owner can.
    owner.send(&ServerCommand::Cancel { id: 2, plan_id: 7 });
    let mut cancelled = None;
    let mut plan_ids = Vec::new();
    for _ in 0..11 {
        match owner.recv() {
            ServerReply::Cancelled { id: 2, plan_id: 7, cancelled: c } => cancelled = Some(c),
            ServerReply::Plan(p) => plan_ids.push(p.id),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(cancelled, Some(true), "the owner's cancel removes the queued plan");
    plan_ids.sort_unstable();
    assert_eq!(plan_ids, (100..110).collect::<Vec<u64>>(), "the cancelled plan never ran");

    // A cancel for an already-answered plan reports false (same connection).
    owner.send(&ServerCommand::Cancel { id: 3, plan_id: 100 });
    assert_eq!(
        owner.recv(),
        ServerReply::Cancelled { id: 3, plan_id: 100, cancelled: false }
    );
    server.stop();
}

/// The satellite fix, pinned: a `Stats` read taken while a delta is
/// quiescing the scheduler answers immediately from counters instead of
/// blocking behind the barrier.
#[test]
fn stats_mid_delta_quiesce_answers_immediately() {
    let cluster = ClusterSpec::cluster_a(1, 1);
    let engine = PlanEngine::shared();
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 1));
    let mut client = server.client();

    // One batch write, processed in order by the reactor: 12 cold plans fill
    // the single worker's queue, the delta starts quiescing behind them, the
    // stats read lands while that barrier is still pending.
    const PLANS: u64 = 12;
    let mut batch = String::new();
    for i in 0..PLANS {
        let line = serde_json::to_string(&ServerCommand::Plan(resnet_variant(
            i,
            1 + i as usize,
            &cluster,
        )))
        .unwrap();
        batch.push_str(&line);
        batch.push('\n');
    }
    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest::new(
        500,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 0.9 },
    );
    batch.push_str(&serde_json::to_string(&ServerCommand::Delta(delta)).unwrap());
    batch.push('\n');
    batch.push_str(&serde_json::to_string(&ServerCommand::Stats { id: 600 }).unwrap());
    batch.push('\n');
    client.send_bytes(batch.as_bytes()).expect("batch written");

    let mut stats_pos = None;
    let mut delta_pos = None;
    for pos in 0..(PLANS as usize + 2) {
        match client.recv() {
            ServerReply::Stats { id: 600, .. } => stats_pos = Some(pos),
            ServerReply::Delta(d) => {
                assert_eq!(d.id, 500);
                assert_eq!(
                    d.invalidated, PLANS as usize,
                    "the barrier saw every plan submitted before the delta"
                );
                delta_pos = Some(pos);
            }
            ServerReply::Plan(_) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let (stats_pos, delta_pos) =
        (stats_pos.expect("stats reply arrived"), delta_pos.expect("delta reply arrived"));
    assert!(
        stats_pos < delta_pos,
        "stats (reply #{stats_pos}) must not block behind the delta barrier (reply #{delta_pos})"
    );
    server.stop();
}

/// A line that exceeds the configured cap draws an `Error` reply and a
/// close — wire input cannot buffer unboundedly — and the server keeps
/// serving new connections.
#[test]
fn oversized_line_gets_an_error_and_a_close() {
    let transport = TransportConfig { max_line_bytes: 4096, ..TransportConfig::default() };
    let server = TestServer::spawn(PlanServer::new(1).with_transport(transport));
    let mut client = server.client();
    client.send_bytes(&[b'x'; 16 * 1024]).expect("oversized write"); // no newline
    match client.try_recv() {
        Some(ServerReply::Error { id: None, message }) => {
            assert!(message.contains("exceeds"), "unexpected error: {message}");
        }
        other => panic!("expected oversize error, got {other:?}"),
    }
    assert!(client.try_recv().is_none(), "the connection is closed after the error");

    // The reactor survives: a fresh connection round-trips.
    let mut fresh = server.client();
    fresh.send(&ServerCommand::Stats { id: 1 });
    assert!(matches!(fresh.recv(), ServerReply::Stats { id: 1, .. }));
    server.stop();
}

/// Graceful shutdown drains in-flight planning work: replies accepted before
/// the signal are flushed before the connection closes.
#[test]
fn graceful_shutdown_flushes_pending_replies() {
    let cluster = ClusterSpec::cluster_a(1, 1);
    let server = TestServer::spawn(PlanServer::new(1));
    let mut client = server.client();
    client.send(&ServerCommand::Plan(resnet_variant(42, 2, &cluster)));
    // Sync point: once the stats reply arrives, the plan line has certainly
    // been read and submitted.
    client.send(&ServerCommand::Stats { id: 1 });
    assert!(matches!(client.recv(), ServerReply::Stats { id: 1, .. }));

    server.stop(); // blocks until drained: the plan reply must be flushed
    match client.recv() {
        ServerReply::Plan(p) => assert_eq!(p.id, 42),
        other => panic!("expected the in-flight plan reply, got {other:?}"),
    }
    assert!(client.try_recv().is_none(), "clean close after the drain");
}
