//! End-to-end tests of the plan-serving subsystem: request → plan → delta →
//! warm re-plan, concurrency, cache-hit byte-identity, and the TCP transport.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use qsync_cluster::device::GpuModel;
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, IndicatorChoice, ModelSpec, PlanEngine, PlanOutcome, PlanRequest,
    PlanServer, ServerCommand, ServerReply,
};

fn mlp() -> ModelSpec {
    ModelSpec::SmallMlp { batch: 16, in_features: 32, hidden: 64, classes: 8 }
}

#[test]
fn full_lifecycle_request_plan_delta_replan() {
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::hybrid_small();

    // 1. Cold plan.
    let request = PlanRequest::new(1, mlp(), cluster.clone());
    let cold = engine.plan(&request).unwrap();
    assert_eq!(cold.outcome, PlanOutcome::ColdPlanned);
    assert!(cold.predicted_iteration_us > 0.0);

    // 2. Identical request: cache hit, byte-identical serialized plan.
    let hit = engine.plan(&PlanRequest::new(2, mlp(), cluster.clone())).unwrap();
    assert_eq!(hit.outcome, PlanOutcome::CacheHit);
    assert_eq!(hit.plan_json().as_bytes(), cold.plan_json().as_bytes());

    // 3. An inference device degrades; the cached entry is invalidated and
    //    re-planned warm against the new shape.
    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest::new(
        3,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.35, compute_fraction: 0.9 },
    );
    let outcome = engine.apply_delta(&delta).unwrap();
    assert_eq!(outcome.invalidated, 1);
    assert_eq!(outcome.replanned.len(), 1);
    let warm = &outcome.replanned[0];
    assert_eq!(warm.outcome, PlanOutcome::WarmReplanned);
    // Warm start resumes from the cached assignment: recovery re-accepts at
    // most as many promotions as the cold run needed from scratch.
    assert!(
        warm.promotions_accepted <= cold.promotions_accepted,
        "warm accepted {} > cold {}",
        warm.promotions_accepted,
        cold.promotions_accepted
    );

    // 4. The new shape is now served from cache.
    let new_cluster = delta.delta.apply(&cluster).unwrap();
    let after = engine.plan(&PlanRequest::new(4, mlp(), new_cluster)).unwrap();
    assert_eq!(after.outcome, PlanOutcome::CacheHit);
    assert_eq!(after.plan_json().as_bytes(), warm.plan_json().as_bytes());
}

#[test]
fn rank_changes_invalidate_and_replan() {
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::cluster_a(1, 1);
    engine.plan(&PlanRequest::new(1, mlp(), cluster.clone())).unwrap();

    // A T4 joins.
    let join = DeltaRequest::new(
        2,
        cluster.clone(),
        ClusterDelta::RankAdded {
            model: GpuModel::T4,
            memory_fraction: 1.0,
            compute_fraction: 1.0,
        },
    );
    let joined = engine.apply_delta(&join).unwrap();
    assert_eq!(joined.invalidated, 1);
    let grown = join.delta.apply(&cluster).unwrap();
    assert_eq!(grown.world_size(), 3);

    // The same T4 leaves again: plans keyed to the grown cluster are evicted.
    let leave = DeltaRequest::new(3, grown.clone(), ClusterDelta::RankRemoved { rank: 2 });
    let left = engine.apply_delta(&leave).unwrap();
    assert_eq!(left.invalidated, 1);
    assert_eq!(left.replanned.len(), 1);
    // Shrinking back restores the original fingerprint, so the re-plan landed
    // on the original key.
    let shrunk = leave.delta.apply(&grown).unwrap();
    assert_eq!(shrunk.fingerprint(), cluster.fingerprint());
    let hit = engine.plan(&PlanRequest::new(4, mlp(), cluster)).unwrap();
    assert_eq!(hit.outcome, PlanOutcome::CacheHit);
}

#[test]
fn sixteen_concurrent_requests_plan_once_per_distinct_key() {
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    // 16 concurrent requests over 2 distinct keys: single-flight must plan
    // each key exactly once and serve the rest as hits.
    std::thread::scope(|scope| {
        for i in 0..16u64 {
            let engine = Arc::clone(&engine);
            let cluster = cluster.clone();
            scope.spawn(move || {
                let model = if i % 2 == 0 {
                    mlp()
                } else {
                    ModelSpec::SmallCnn { batch: 4, image: 16, classes: 10 }
                };
                let response = engine.plan(&PlanRequest::new(i, model, cluster)).unwrap();
                assert_eq!(response.id, i);
                assert!(response.predicted_iteration_us > 0.0);
            });
        }
    });
    let stats = engine.cache().stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.misses, 2, "single-flight must collapse duplicate planning");
    assert_eq!(stats.hits, 14);
}

#[test]
fn line_protocol_serves_plans_and_deltas_in_order() {
    let cluster = ClusterSpec::hybrid_small();
    let mut input = String::new();
    for id in 0..8u64 {
        let cmd = ServerCommand::Plan(PlanRequest::new(id, mlp(), cluster.clone()));
        input.push_str(&serde_json::to_string(&cmd).unwrap());
        input.push('\n');
    }
    let rank = cluster.inference_ranks()[0];
    let delta = ServerCommand::Delta(DeltaRequest::new(
        100,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 1.0 },
    ));
    input.push_str(&serde_json::to_string(&delta).unwrap());
    input.push('\n');
    input.push_str(&serde_json::to_string(&ServerCommand::Stats { id: 101 }).unwrap());
    input.push('\n');

    let server = PlanServer::new(8);
    let mut out: Vec<u8> = Vec::new();
    server.serve_lines(input.as_bytes(), &mut out).unwrap();

    let replies: Vec<ServerReply> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(replies.len(), 10);

    let plans: Vec<_> = replies
        .iter()
        .filter_map(|r| match r {
            ServerReply::Plan(p) => Some(p),
            _ => None,
        })
        .collect();
    assert_eq!(plans.len(), 8);
    // All 8 plan replies name the same key; exactly one planned cold.
    assert!(plans.iter().all(|p| p.key == plans[0].key));
    assert_eq!(plans.iter().filter(|p| p.outcome == PlanOutcome::ColdPlanned).count(), 1);

    // The delta is a barrier: it ran after all 8 plans, so it saw the entry.
    let delta_reply = replies
        .iter()
        .find_map(|r| match r {
            ServerReply::Delta(d) => Some(d),
            _ => None,
        })
        .expect("delta reply");
    assert_eq!(delta_reply.id, 100);
    assert_eq!(delta_reply.invalidated, 1);
    assert_eq!(delta_reply.replanned.len(), 1);
}

#[test]
fn tcp_transport_round_trips() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let server = PlanServer::new(2);

    let server_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        server.serve_stream(stream).expect("serve stream");
    });

    let mut client = TcpStream::connect(addr).expect("connect");
    let request = ServerCommand::Plan(PlanRequest::new(9, mlp(), ClusterSpec::hybrid_small()));
    writeln!(client, "{}", serde_json::to_string(&request).unwrap()).unwrap();
    client.shutdown(std::net::Shutdown::Write).unwrap();

    let mut lines = BufReader::new(client).lines();
    let reply: ServerReply = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
    match reply {
        ServerReply::Plan(p) => {
            assert_eq!(p.id, 9);
            assert_eq!(p.outcome, PlanOutcome::ColdPlanned);
        }
        other => panic!("expected plan reply, got {other:?}"),
    }
    server_thread.join().unwrap();
}

#[test]
fn indicator_and_constraint_variants_serve_distinct_plans() {
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::hybrid_small();
    let mut base = PlanRequest::new(1, mlp(), cluster.clone());
    let default_plan = engine.plan(&base).unwrap();

    base.id = 2;
    base.indicator = IndicatorChoice::Random;
    let random_plan = engine.plan(&base).unwrap();
    assert_eq!(random_plan.outcome, PlanOutcome::ColdPlanned);
    assert_ne!(random_plan.key, default_plan.key);

    let mut tight = PlanRequest::new(3, mlp(), cluster);
    tight.memory_limit_fraction = Some(0.2);
    let tight_plan = engine.plan(&tight).unwrap();
    assert_eq!(tight_plan.outcome, PlanOutcome::ColdPlanned);
    assert_ne!(tight_plan.key, default_plan.key);
    assert_eq!(engine.cache().len(), 3);
}
