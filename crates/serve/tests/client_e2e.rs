//! End-to-end tests of the typed client stack (`qsync-client`) against a
//! live reactor server: the `Hello` handshake, structured errors, the
//! multiplexing handle (many in-flight requests over one socket, replies
//! routed by id), per-client DRR weight from the wire, and the
//! `Subscribe` event stream (a watcher observes invalidate → re-plan for a
//! delta it did not submit).

use std::sync::Arc;
use std::time::Duration;

use qsync_client::ClientError;
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, ErrorCode, ModelSpec, PlanEngine, PlanOutcome, PlanRequest,
    PlanServer, Priority, ServerCommand, ServerEvent, ServerReply,
};

mod common;
use common::TestServer;

fn mlp() -> ModelSpec {
    ModelSpec::SmallMlp { batch: 16, in_features: 32, hidden: 64, classes: 8 }
}

fn mlp_request(id: u64, cluster: &ClusterSpec) -> PlanRequest {
    PlanRequest::new(id, mlp(), cluster.clone())
}

#[test]
fn typed_client_handshakes_and_plans() {
    let server = TestServer::spawn(PlanServer::new(2));
    let mut client = server.typed_client();
    assert_eq!(client.server_versions(), (0, 1), "server speaks v0 (legacy) through v1");
    assert!(client.server_ident().starts_with("qsync-serve/"), "{}", client.server_ident());

    let cluster = ClusterSpec::hybrid_small();
    let cold = client.plan(mlp_request(0, &cluster)).expect("plan");
    assert_eq!(cold.outcome, PlanOutcome::ColdPlanned);
    let hit = client.plan(mlp_request(0, &cluster)).expect("plan again");
    assert_eq!(hit.outcome, PlanOutcome::CacheHit);
    assert_eq!(hit.plan_json(), cold.plan_json());
    assert_ne!(hit.id, cold.id, "the client assigns connection-unique ids");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.sched.expect("streaming path has a scheduler").interactive.submitted, 2);
    server.stop();
}

#[test]
fn structured_errors_carry_code_and_field() {
    let server = TestServer::spawn(PlanServer::new(1));
    let mut client = server.typed_client();
    let mut bad = mlp_request(0, &ClusterSpec::hybrid_small());
    bad.memory_limit_fraction = Some(7.5);
    match client.plan(bad) {
        Err(ClientError::Api(error)) => {
            assert_eq!(error.code, ErrorCode::InvalidField);
            assert_eq!(error.field.as_deref(), Some("memory_limit_fraction"));
            assert!(error.message.contains("memory_limit_fraction"), "{}", error.message);
            assert!(error.id.is_some(), "fault echoes the request id");
        }
        other => panic!("expected a structured API error, got {other:?}"),
    }
    // The connection survives the fault.
    let ok = client.plan(mlp_request(0, &ClusterSpec::hybrid_small())).expect("plan after fault");
    assert_eq!(ok.outcome, PlanOutcome::ColdPlanned);
    server.stop();
}

#[test]
fn mux_client_routes_many_in_flight_replies_by_id() {
    let engine = PlanEngine::shared();
    let cluster = ClusterSpec::hybrid_small();
    engine.plan(&mlp_request(0, &cluster)).expect("pre-warm");
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 4));
    let mux = server.mux_client();

    // 4 threads sharing ONE socket, 16 plans each, stats interleaved: every
    // reply must resolve the right waiter (keys and outcomes prove routing;
    // the Pending ids prove uniqueness).
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mux = mux.clone();
            let cluster = cluster.clone();
            scope.spawn(move || {
                let pendings: Vec<_> = (0..16)
                    .map(|_| mux.submit_plan(mlp_request(0, &cluster)).expect("submit"))
                    .collect();
                let stats = mux.stats().expect("stats interleaves with in-flight plans");
                assert!(stats.sched.is_some());
                let mut ids = Vec::new();
                for pending in pendings {
                    ids.push(pending.id());
                    let response = pending.wait_timeout(Duration::from_secs(60)).expect("reply");
                    assert_eq!(response.outcome, PlanOutcome::CacheHit);
                    assert_eq!(*ids.last().unwrap(), response.id, "reply routed to its waiter");
                }
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), 16, "connection-unique correlation ids");
            });
        }
    });
    assert!(engine.cache().stats().hits >= 64);
    server.stop();
}

#[test]
fn mux_cancel_releases_the_pending_waiter() {
    // One worker occupied by a cold blocker; a queued plan is cancelled
    // through the same mux connection. The cancel must report true AND the
    // cancelled plan's Pending must resolve (to Cancelled) instead of
    // waiting forever for a reply the server will never send.
    let cluster = ClusterSpec::cluster_a(1, 1);
    let server = TestServer::spawn(PlanServer::new(1));
    let mux = server.mux_client();
    let blocker = mux
        .submit_plan(PlanRequest::new(
            0,
            ModelSpec::Resnet50 { batch: 2, image: 32 },
            cluster.clone(),
        ))
        .expect("submit blocker");
    let doomed = mux.submit_plan(mlp_request(0, &cluster)).expect("submit doomed plan");
    let cancelled = mux.cancel(doomed.id()).expect("cancel round-trip");
    assert!(cancelled, "the queued plan was cancellable");
    match doomed.wait_timeout(Duration::from_secs(5)) {
        Err(ClientError::Cancelled) => {}
        other => panic!("cancelled pending must resolve to Cancelled, got {other:?}"),
    }
    blocker.wait_timeout(Duration::from_secs(60)).expect("blocker completes");
    server.stop();
}

#[test]
fn wire_weight_scales_drr_service_share_end_to_end() {
    // One worker, a cold blocker occupying it, then six cache-hit plans from
    // two wire-identified clients — "heavy" at weight 2, "light" at weight 1
    // — pipelined while the blocker runs. With a single worker the reply
    // order IS the DRR dispatch order: heavy drains two jobs per round to
    // light's one. (Weight comes straight off the wire; nothing else
    // distinguishes the clients.)
    let cluster = ClusterSpec::hybrid_small();
    let engine = PlanEngine::shared();
    engine.plan(&mlp_request(0, &cluster)).expect("pre-warm the hit key");
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 1));
    let mut client = server.client();

    let mut batch = String::new();
    // The blocker: a cold resnet plan, slow enough (debug build) that the
    // six lines below are all queued before the worker frees up.
    let blocker =
        PlanRequest::new(999, ModelSpec::Resnet50 { batch: 1, image: 32 }, cluster.clone());
    batch.push_str(&serde_json::to_string(&ServerCommand::Plan(blocker)).unwrap());
    batch.push('\n');
    let mut tagged = |id: u64, client_id: &str, weight: u32| {
        let mut request = mlp_request(id, &cluster);
        request.client_id = Some(client_id.into());
        request.weight = Some(weight);
        request.priority = Some(Priority::Interactive);
        batch.push_str(&serde_json::to_string(&ServerCommand::Plan(request)).unwrap());
        batch.push('\n');
    };
    for id in [10, 11, 12, 13] {
        tagged(id, "heavy", 2);
    }
    for id in [20, 21] {
        tagged(id, "light", 1);
    }
    client.send_bytes(batch.as_bytes()).expect("pipelined batch");

    let mut order = Vec::new();
    for _ in 0..7 {
        match client.recv() {
            ServerReply::Plan(p) => order.push(p.id),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(order[0], 999, "the blocker dispatched first");
    assert_eq!(
        &order[1..],
        &[10, 11, 20, 12, 13, 21],
        "weight-2 client drains two jobs per DRR round against weight-1's one"
    );
    server.stop();
}

#[test]
fn subscriber_observes_invalidate_then_replan_for_another_clients_delta() {
    // The acceptance scenario: a watcher subscribes, a *different* client
    // submits a delta, and the watcher sees the invalidate → re-plan →
    // applied event sequence without polling Stats.
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::new(2));
    let mut watcher = server.typed_client();
    let mut actor = server.typed_client();

    let planned = actor.plan(mlp_request(0, &cluster)).expect("populate the cache");
    watcher.subscribe().expect("subscribe");

    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest::new(
        0,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 0.9 },
    );
    let outcome = actor.delta(delta).expect("delta applies");
    assert_eq!(outcome.invalidated, 1);
    assert_eq!(outcome.replanned.len(), 1);

    let (seq1, invalidated) = watcher.next_event().expect("first event");
    match invalidated {
        ServerEvent::CacheInvalidated { keys, .. } => {
            assert_eq!(keys, vec![planned.key.clone()], "the watcher saw which entry was evicted");
        }
        other => panic!("expected CacheInvalidated first, got {other:?}"),
    }
    let (seq2, replanned) = watcher.next_event().expect("second event");
    match replanned {
        ServerEvent::Replanned { key, outcome: plan_outcome, .. } => {
            assert_eq!(key, outcome.replanned[0].key);
            assert_eq!(plan_outcome, PlanOutcome::WarmReplanned);
        }
        other => panic!("expected Replanned second, got {other:?}"),
    }
    let (seq3, applied) = watcher.next_event().expect("third event");
    match applied {
        ServerEvent::DeltaApplied { id, invalidated, replanned, .. } => {
            assert_eq!(id, outcome.id);
            assert_eq!(invalidated, 1);
            assert_eq!(replanned, 1);
        }
        other => panic!("expected DeltaApplied third, got {other:?}"),
    }
    assert!(seq1 < seq2 && seq2 < seq3, "event sequence numbers are monotone");

    // After unsubscribe the stream goes quiet: a further delta produces no
    // buffered events on the watcher's connection.
    watcher.unsubscribe().expect("unsubscribe");
    let shape2 = ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 0.9 }
        .apply(&cluster)
        .unwrap();
    actor
        .delta(DeltaRequest::new(0, shape2, ClusterDelta::RankRemoved { rank: 0 }))
        .expect("second delta");
    let stats = watcher.stats().expect("round-trip after unsubscribe");
    assert!(stats.deltas.waves >= 2);
    assert_eq!(watcher.buffered_event_count(), 0, "no events may arrive after unsubscribe");
    server.stop();
}

#[test]
fn mux_event_stream_receives_events() {
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::new(2));
    let mux = server.mux_client();
    mux.plan(mlp_request(0, &cluster)).expect("populate the cache");
    let events = mux.subscribe().expect("subscribe");

    let other = server.mux_client();
    let rank = cluster.inference_ranks()[0];
    other
        .delta(DeltaRequest::new(
            0,
            cluster.clone(),
            ClusterDelta::Degraded { rank, memory_fraction: 0.4, compute_fraction: 0.9 },
        ))
        .expect("delta");

    let first = events.next_timeout(Duration::from_secs(30)).expect("event arrives");
    assert!(
        matches!(
            first,
            qsync_client::EventItem::Event { event: ServerEvent::CacheInvalidated { .. }, .. }
        ),
        "invalidation leads the stream, got {first:?}"
    );
    server.stop();
}
