//! Integration tests for the scheduled serving path: delta coalescing
//! (batched waves, byte-identity to serial application), scheduler-aware wire
//! fields, admission control and deadline accounting through the protocol.

use std::sync::Arc;

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, ModelSpec, PlanEngine, PlanOutcome, PlanRequest, PlanServer,
    Priority, SchedConfig, ServerCommand, ServerReply,
};

mod common;
use common::TestServer;

fn mlp() -> ModelSpec {
    ModelSpec::SmallMlp { batch: 16, in_features: 32, hidden: 64, classes: 8 }
}

fn cnn() -> ModelSpec {
    ModelSpec::SmallCnn { batch: 4, image: 16, classes: 10 }
}

/// Degrade the cluster's first inference rank to the given memory fraction.
fn degrade(id: u64, cluster: &ClusterSpec, memory_fraction: f64) -> DeltaRequest {
    let rank = cluster.inference_ranks()[0];
    DeltaRequest::new(
        id,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction, compute_fraction: 0.9 },
    )
}

/// Pre-warm an engine with two model entries on `cluster`.
fn warmed_engine(cluster: &ClusterSpec) -> PlanEngine {
    let engine = PlanEngine::new();
    engine.plan(&PlanRequest::new(1, mlp(), cluster.clone())).unwrap();
    engine.plan(&PlanRequest::new(2, cnn(), cluster.clone())).unwrap();
    engine
}

#[test]
fn batched_deltas_match_serial_application_byte_identically() {
    let base = ClusterSpec::hybrid_small();

    // Serial reference: apply each delta one at a time, chaining the cluster
    // shape each delta names (the pre-batching client behavior).
    let serial = warmed_engine(&base);
    let d1 = degrade(10, &base, 0.6);
    let shape1 = d1.delta.apply(&base).unwrap();
    let r1 = serial.apply_delta(&d1).unwrap();
    assert_eq!(r1.invalidated, 2);
    assert_eq!(r1.coalesced, 1);
    let d2 = degrade(11, &shape1, 0.4);
    let shape2 = d2.delta.apply(&shape1).unwrap();
    let r2 = serial.apply_delta(&d2).unwrap();
    let d3 = DeltaRequest::new(
        12,
        shape2.clone(),
        ClusterDelta::RankAdded {
            model: qsync_cluster::device::GpuModel::T4,
            memory_fraction: 1.0,
            compute_fraction: 1.0,
        },
    );
    let shape3 = d3.delta.apply(&shape2).unwrap();
    let r3 = serial.apply_delta(&d3).unwrap();
    assert_eq!(r2.replanned.len(), 2);
    assert_eq!(r3.replanned.len(), 2);

    // Batched: the same three events submitted concurrently, all naming the
    // *base* cluster — composed into one wave.
    let batched = warmed_engine(&base);
    let concurrent = [
        degrade(20, &base, 0.6),
        degrade(21, &base, 0.4),
        DeltaRequest::new(22, base.clone(), d3.delta.clone()),
    ];
    let outcomes = batched.apply_deltas_with(&concurrent, |chains| {
        chains.iter().map(|c| batched.run_replan_chain(c)).collect()
    });
    let outcomes: Vec<_> = outcomes.into_iter().map(|o| o.unwrap()).collect();

    // One wave, three coalesced events, chains re-planned once per entry.
    assert_eq!(batched.delta_stats().waves, 1);
    assert_eq!(batched.delta_stats().events, 3);
    assert_eq!(batched.delta_stats().batched_replans, 2);
    assert_eq!(serial.delta_stats().waves, 3, "serial reference applied three waves");
    for outcome in &outcomes {
        assert_eq!(outcome.coalesced, 3);
        assert_eq!(outcome.invalidated, 2);
    }
    // Composition follows arrival order: the members' fingerprints chain.
    assert_eq!(outcomes[0].old_cluster_fingerprint, format!("{:032x}", base.fingerprint()));
    assert_eq!(outcomes[1].old_cluster_fingerprint, format!("{:032x}", shape1.fingerprint()));
    assert_eq!(outcomes[2].new_cluster_fingerprint, format!("{:032x}", shape3.fingerprint()));
    // Only the last member carries the final re-plans.
    assert!(outcomes[0].replanned.is_empty());
    assert!(outcomes[1].replanned.is_empty());
    assert_eq!(outcomes[2].replanned.len(), 2);

    // Byte-identity: the batched wave's final plans equal the serial chain's,
    // per model, and the final cache serves the same bytes.
    for final_serial in &r3.replanned {
        let twin = outcomes[2]
            .replanned
            .iter()
            .find(|p| p.key == final_serial.key)
            .expect("batched wave re-planned the same keys");
        assert_eq!(twin.plan_json().as_bytes(), final_serial.plan_json().as_bytes());
        assert_eq!(twin.outcome, final_serial.outcome);
    }
    for (engine, label) in [(&serial, "serial"), (&batched, "batched")] {
        let hit = engine.plan(&PlanRequest::new(30, mlp(), shape3.clone())).unwrap();
        assert_eq!(hit.outcome, PlanOutcome::CacheHit, "{label} cache misses the final shape");
    }
    assert_eq!(
        serial.plan(&PlanRequest::new(31, mlp(), shape3.clone())).unwrap().plan_json(),
        batched.plan(&PlanRequest::new(31, mlp(), shape3.clone())).unwrap().plan_json(),
    );
}

#[test]
fn concurrent_deltas_coalesce_into_shared_waves() {
    let base = ClusterSpec::hybrid_small();
    let engine = Arc::new(warmed_engine(&base));
    // 8 threads concurrently submit the *same* degradation (idempotent under
    // composition: the final shape is stable no matter how many compose).
    let final_shape = degrade(0, &base, 0.5).delta.apply(&base).unwrap();
    std::thread::scope(|scope| {
        for i in 0..8u64 {
            let engine = Arc::clone(&engine);
            let base = base.clone();
            scope.spawn(move || {
                let request = degrade(100 + i, &base, 0.5);
                let outcome = engine
                    .apply_delta_coalesced_with(&request, |chains| {
                        chains.iter().map(|c| engine.run_replan_chain(c)).collect()
                    })
                    .unwrap();
                assert_eq!(outcome.id, 100 + i);
            });
        }
    });
    let stats = engine.delta_stats();
    assert_eq!(stats.events, 8);
    assert!(stats.waves <= 8, "waves never exceed events");
    assert!(stats.waves >= 1);
    // Whatever the interleaving, the final shape is cached and correct.
    let hit = engine.plan(&PlanRequest::new(200, mlp(), final_shape.clone())).unwrap();
    assert_eq!(hit.outcome, PlanOutcome::CacheHit);
    let fresh = PlanEngine::new().plan(&PlanRequest::new(200, mlp(), final_shape)).unwrap();
    assert_eq!(hit.plan_json(), fresh.plan_json(), "coalesced replan differs from cold truth");
}

#[test]
fn delta_through_server_fans_replans_over_the_batch_class() {
    let cluster = ClusterSpec::hybrid_small();
    let engine = PlanEngine::shared();
    let server = TestServer::spawn(PlanServer::with_engine(Arc::clone(&engine), 4));
    let mut client = server.client();

    // Interactive exchange so the ordering is deterministic: both plans are
    // *completed* (replies read) before the delta goes out, and the stats
    // read happens only after the delta reply lands.
    for (id, model) in [(1u64, mlp()), (2, cnn())] {
        client.send(&ServerCommand::Plan(PlanRequest::new(id, model, cluster.clone())));
        assert!(matches!(client.recv(), ServerReply::Plan(_)));
    }
    client.send(&ServerCommand::Delta(degrade(3, &cluster, 0.5)));
    let ServerReply::Delta(delta_reply) = client.recv() else { panic!("delta reply") };
    assert_eq!(delta_reply.invalidated, 2);
    assert_eq!(delta_reply.replanned.len(), 2);

    // The re-plans ran as batch-class scheduler jobs, not on the delta
    // executor thread.
    client.send(&ServerCommand::Stats { id: 4 });
    let ServerReply::Stats { sched: Some(sched), .. } = client.recv() else {
        panic!("stats reply")
    };
    // `dispatched` is ordered before the wave's result collection; `completed`
    // (the dispatch-drop counter) may lag the Stats read by a hair.
    assert_eq!(sched.batch.submitted, 2, "two replan chains were submitted batch-class");
    assert_eq!(sched.batch.dispatched, 2, "both replan chains ran on the pool");
    assert_eq!(sched.interactive.completed, 2, "the delta barrier saw both plans complete");
    assert_eq!(engine.delta_stats().batched_replans, 2);
}

#[test]
fn scheduling_fields_flow_through_the_wire() {
    let cluster = ClusterSpec::hybrid_small();
    let mut tagged = PlanRequest::new(1, mlp(), cluster.clone());
    tagged.priority = Some(Priority::Background);
    tagged.client_id = Some("tenant-a".into());
    tagged.deadline_ms = Some(60_000); // generous: must be met
    let mut input = serde_json::to_string(&ServerCommand::Plan(tagged)).unwrap();
    input.push('\n');
    input.push_str(&serde_json::to_string(&ServerCommand::Stats { id: 2 }).unwrap());
    input.push('\n');

    let server = PlanServer::new(2);
    let mut out: Vec<u8> = Vec::new();
    server.serve_lines(input.as_bytes(), &mut out).unwrap();
    let replies: Vec<ServerReply> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert!(replies.iter().any(|r| matches!(r, ServerReply::Plan(p) if p.id == 1)));

    // EOF quiesces the pool, so by the end the background job completed and
    // the deadline was accounted (met: 60 s of headroom).
    let stats = server
        .handle(ServerCommand::Stats { id: 9 });
    let ServerReply::Stats { deltas, .. } = &stats else { panic!("stats reply") };
    assert_eq!(deltas.waves, 0);
    // Scheduler stats come from the in-stream reply (the scheduler lives per
    // stream); submitted/completed land in the background class.
    let sched_seen = replies.iter().any(|r| {
        matches!(r, ServerReply::Stats { sched: Some(s), .. }
            if s.background.submitted == 1 && s.deadline_met + s.deadline_misses <= 1)
    });
    assert!(sched_seen, "background submission visible in scheduler stats");
}

#[test]
fn shed_expired_server_answers_expired_plans_with_errors() {
    // deadline_ms: 0 with shed_expired: jobs whose deadline has passed at
    // dispatch are answered without planning. With a same-millisecond
    // dispatch the job is *not* expired (deadline is inclusive), so both
    // outcomes are legal — but the reply accounting must be consistent: one
    // reply, and (misses + met) == 1 afterwards.
    let engine = PlanEngine::shared();
    let config = SchedConfig { shed_expired: true, ..SchedConfig::default() };
    let server = PlanServer::with_sched(Arc::clone(&engine), 1, config);
    let mut request = PlanRequest::new(1, mlp(), ClusterSpec::hybrid_small());
    request.deadline_ms = Some(0);
    let mut input = serde_json::to_string(&ServerCommand::Plan(request)).unwrap();
    input.push('\n');
    let mut out: Vec<u8> = Vec::new();
    server.serve_lines(input.as_bytes(), &mut out).unwrap();
    let replies: Vec<ServerReply> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(replies.len(), 1);
    match &replies[0] {
        ServerReply::Plan(p) => assert_eq!(p.id, 1),
        ServerReply::Error { id, message } => {
            assert_eq!(*id, Some(1));
            assert!(message.contains("deadline exceeded"), "unexpected: {message}");
        }
        other => panic!("unexpected reply {other:?}"),
    }
}
