//! End-to-end observability: request traces reconstructable over the wire,
//! delta-wave events stamped with their originating trace id, the `Metrics`
//! command reporting every layer, and the slow-subscriber path — dropped
//! events counted, surfaced as client-side gaps, and recovered via `Resync`.

use std::time::{Duration, Instant};

use qsync_client::EventItem;
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, ModelSpec, PlanRequest, PlanServer, ServerEvent, TransportConfig,
};

mod common;
use common::TestServer;

fn mlp_request(id: u64, cluster: &ClusterSpec) -> PlanRequest {
    PlanRequest::new(
        id,
        ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
        cluster.clone(),
    )
}

fn degrade(cluster: &ClusterSpec, memory_fraction: f64) -> DeltaRequest {
    let rank = cluster.inference_ranks()[0];
    DeltaRequest::new(
        0,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction, compute_fraction: 0.95 },
    )
}

/// Poll `Trace` until the trace contains `stage` (the final span of a
/// request lands moments after its reply line, so an immediate query can
/// race it) or the deadline passes.
fn wait_for_stage(mux: &qsync_client::MuxClient, trace_id: u64, stage: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let spans = mux.trace(trace_id, None).expect("trace query");
        if spans.iter().any(|s| s.stage == stage) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "trace {trace_id} never grew a {stage:?} span; have {:?}",
            spans.iter().map(|s| s.stage.clone()).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn trace_reconstructs_the_request_lifecycle_end_to_end() {
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::new(2));
    let mux = server.mux_client();

    // Cold request: the server mints the trace id and echoes it.
    let cold = mux.plan(mlp_request(0, &cluster)).expect("cold plan");
    let cold_tid = cold.trace_id.expect("server minted a trace id");
    assert_ne!(cold_tid, 0);
    wait_for_stage(&mux, cold_tid, "reply_write");
    let spans = mux.trace(cold_tid, None).expect("trace query");
    let stages: Vec<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
    for expected in ["parse", "dispatch", "cold_plan", "reply_write"] {
        assert!(stages.contains(&expected), "missing {expected:?} span in {stages:?}");
    }
    // Spans arrive oldest-first and every one carries the same trace id.
    assert!(spans.windows(2).all(|w| w[0].start_us <= w[1].start_us), "spans out of order");
    assert!(spans.iter().all(|s| s.trace_id == cold_tid));
    let cold_span = spans.iter().find(|s| s.stage == "cold_plan").expect("cold_plan span");
    assert_eq!(cold_span.detail, cold.key, "the planning span names the cache key");

    // Hit request with a caller-chosen trace id: respected, not re-minted.
    let mut request = mlp_request(0, &cluster);
    request.trace_id = Some(424_242);
    let hit = mux.plan(request).expect("cache hit");
    assert_eq!(hit.trace_id, Some(424_242));
    wait_for_stage(&mux, 424_242, "reply_write");
    let spans = mux.trace(424_242, None).expect("trace query");
    let stages: Vec<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
    for expected in ["parse", "dispatch", "cache_hit", "reply_write"] {
        assert!(stages.contains(&expected), "missing {expected:?} span in {stages:?}");
    }

    server.stop();
}

#[test]
fn delta_wave_events_carry_the_originating_trace_id() {
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::new(2));
    let watcher = server.mux_client();
    let actor = server.mux_client();

    actor.plan(mlp_request(0, &cluster)).expect("populate the cache");
    let events = watcher.subscribe().expect("subscribe");

    let mut delta = degrade(&cluster, 0.5);
    delta.trace_id = Some(777);
    let outcome = actor.delta(delta).expect("delta applies");
    assert_eq!(outcome.trace_id, Some(777), "the delta reply echoes its trace id");

    let mut kinds = Vec::new();
    while kinds.len() < 3 {
        let item = events.next_timeout(Duration::from_secs(30)).expect("wave event");
        let EventItem::Event { event, .. } = item else {
            panic!("no events may drop in this test, got {item:?}")
        };
        assert_eq!(event.trace_id(), 777, "event lost its originating trace id: {event:?}");
        kinds.push(match event {
            ServerEvent::CacheInvalidated { .. } => "invalidated",
            ServerEvent::Replanned { .. } => "replanned",
            ServerEvent::DeltaApplied { .. } => "applied",
            ServerEvent::PlanReady { .. } => "ready",
        });
    }
    assert_eq!(kinds, ["invalidated", "replanned", "applied"]);

    server.stop();
}

#[test]
fn metrics_command_reports_every_layer() {
    let cluster = ClusterSpec::hybrid_small();
    let server = TestServer::spawn(PlanServer::new(2));
    let mux = server.mux_client();

    mux.plan(mlp_request(0, &cluster)).expect("cold");
    mux.plan(mlp_request(0, &cluster)).expect("hit");
    mux.delta(degrade(&cluster, 0.5)).expect("delta");

    let metrics = mux.metrics().expect("metrics");
    // Transport layer.
    assert!(metrics.counter("qsync_transport_accepts_total").unwrap() >= 1);
    assert!(metrics.counter("qsync_transport_bytes_in_total").unwrap() > 0);
    assert!(metrics.histogram("qsync_transport_frame_bytes").unwrap().count >= 3);
    assert!(metrics.gauge("qsync_transport_conns_open").unwrap() >= 1);
    // Scheduler layer: dispatch latency plus per-class derived counters.
    assert!(metrics.histogram("qsync_sched_dispatch_wait_ms").unwrap().count >= 2);
    assert!(metrics.counter("qsync_sched_dispatched{class=\"interactive\"}").is_some());
    assert!(metrics.gauge("qsync_sched_queue_depth{class=\"batch\"}").is_some());
    // Engine / cache layer.
    assert_eq!(metrics.counter("qsync_cache_hits_total"), Some(1));
    assert_eq!(metrics.counter("qsync_cache_misses_total"), Some(1));
    assert_eq!(metrics.histogram("qsync_plan_latency_us{kind=\"cold\"}").unwrap().count, 1);
    assert_eq!(metrics.histogram("qsync_plan_latency_us{kind=\"hit\"}").unwrap().count, 1);
    let cold = metrics.histogram("qsync_plan_latency_us{kind=\"cold\"}").unwrap();
    assert!(cold.p50() > 0, "cold latency histogram records real time");
    // Delta pipeline.
    assert_eq!(metrics.counter("qsync_delta_waves_total"), Some(1));
    assert_eq!(metrics.histogram("qsync_delta_wave_width").unwrap().count, 1);
    assert_eq!(metrics.histogram("qsync_plan_latency_us{kind=\"warm\"}").unwrap().count, 1);
    assert!(metrics.histogram("qsync_delta_fanout_us").unwrap().count >= 1);
    // And the whole snapshot renders as parseable text exposition.
    let text = metrics.render_prometheus();
    assert!(text.contains("# TYPE qsync_plan_latency_us histogram"));
    assert!(text.contains("qsync_cache_hits_total 1"));

    server.stop();
}

#[test]
fn slow_subscriber_drops_are_counted_surfaced_as_gaps_and_resynced() {
    let cluster = ClusterSpec::hybrid_small();
    // A zero event-outbox cap sheds any event broadcast while the previous
    // one is still un-flushed — with each wave emitting several events
    // back-to-back from the executor thread, drops are guaranteed under
    // load while replies stay lossless.
    let server = TestServer::spawn(
        PlanServer::new(2)
            .with_transport(TransportConfig { event_outbox_cap: 0, ..TransportConfig::default() }),
    );
    let watcher = server.mux_client();
    let actor = server.mux_client();

    actor.plan(mlp_request(0, &cluster)).expect("populate the cache");
    let events = watcher.subscribe().expect("subscribe");

    // Flood: a chain of 8 degrade waves, each invalidating and re-planning
    // the (single) cached entry, each broadcasting 3 events.
    let mut shape = cluster.clone();
    for i in 0..8 {
        let fraction = 0.9 - 0.05 * i as f64;
        let delta = degrade(&shape, fraction);
        shape = delta.delta.apply(&shape).expect("delta applies to the running shape");
        actor.delta(delta).expect("delta applies");
    }

    // Drain what made it through; gaps surface as explicit items.
    let mut delivered = 0u64;
    let mut missed = 0u64;
    while let Some(item) = events.next_timeout(Duration::from_millis(300)) {
        match item {
            EventItem::Event { .. } => delivered += 1,
            EventItem::Gap { .. } => missed += item.missed(),
        }
    }

    let stats = actor.stats().expect("stats");
    assert_eq!(stats.subscribers.len(), 1, "one subscriber registered");
    let dropped = stats.subscribers[0].dropped;
    assert!(dropped > 0, "the flood must shed events under a zero outbox cap");
    assert!(missed > 0, "shed events must surface as explicit gap items");
    assert!(missed <= dropped, "gaps cannot exceed the server's drop count");

    // Resync: authoritative state, a fresh baseline, and a reset counter.
    let resync = watcher.resync().expect("resync");
    assert_eq!(resync.dropped, dropped, "resync reports (and claims) the dropped count");
    assert_eq!(
        resync.seq,
        delivered + dropped,
        "every broadcast either arrived or was counted dropped"
    );
    assert_eq!(resync.keys.len(), 1, "one entry cached after the degrade chain");
    let after = actor.stats().expect("stats after resync");
    assert_eq!(after.subscribers[0].dropped, 0, "resync resets the dropped counter");

    // The stream resumes against the new baseline: the next wave's events
    // either arrive at (or past) the baseline or raise a gap anchored on it.
    events.reset_baseline(resync.seq);
    actor.delta(degrade(&shape, 0.45)).expect("post-resync delta");
    let item = events.next_timeout(Duration::from_secs(30)).expect("stream resumes");
    match item {
        EventItem::Event { seq, .. } => assert!(seq >= resync.seq),
        EventItem::Gap { expected, got } => {
            assert_eq!(expected, resync.seq);
            assert!(got > expected);
        }
    }

    server.stop();
}
