//! Scheduler integration tests: the ISSUE's acceptance criterion, under a
//! deterministic virtual-time simulation.
//!
//! A single worker pops jobs and advances a [`ManualClock`] by each job's
//! service time, so every queue-wait figure is exact and reproducible:
//! dispatch order depends only on submit order and scheduler state.

use std::collections::BTreeMap;
use std::sync::Arc;

use qsync_sched::{JobMeta, ManualClock, Priority, SchedConfig, SchedPolicy, Scheduler};

/// Run all pre-submitted jobs to completion under one worker, advancing the
/// clock by `service_ms` per job. Returns per-client queue waits in dispatch
/// order.
fn drain_timed(
    sched: &Scheduler<&'static str>,
    clock: &ManualClock,
    service_ms: u64,
) -> BTreeMap<&'static str, Vec<u64>> {
    let mut waits: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    while let Some(mut job) = sched.try_next() {
        let client = job.take_payload();
        waits.entry(client).or_default().push(job.queue_wait_ms());
        clock.advance(service_ms);
        drop(job);
    }
    waits
}

fn p99(waits: &[u64]) -> u64 {
    let mut sorted = waits.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * 99 / 100]
}

fn scheduler(policy: SchedPolicy) -> (Scheduler<&'static str>, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let config = SchedConfig { policy, ..SchedConfig::default() };
    (Scheduler::with_clock(config, clock.clone()), clock)
}

/// Saturating mix: four clients, equal offered load, but their bursts land
/// back-to-back in arrival order. FIFO serves the bursts sequentially, so the
/// last client's jobs all wait behind three full bursts while the first
/// client's barely wait — per-client p99 queue waits spread ~4x. DRR
/// round-robins the clients, so every client drains at the same per-client
/// pace and p99 waits are within 2x of each other (the acceptance criterion).
fn burst_skew_p99s(policy: SchedPolicy) -> BTreeMap<&'static str, u64> {
    let (sched, clock) = scheduler(policy);
    for client in ["a", "b", "c", "d"] {
        for _ in 0..100 {
            sched.submit(client, JobMeta::new(client, Priority::Interactive)).unwrap();
        }
    }
    let waits = drain_timed(&sched, &clock, 1);
    waits.into_iter().map(|(client, w)| (client, p99(&w))).collect()
}

#[test]
fn drr_keeps_per_client_p99_within_2x_where_fifo_does_not() {
    let fifo = burst_skew_p99s(SchedPolicy::Fifo);
    let drr = burst_skew_p99s(SchedPolicy::Drr);
    let ratio = |p99s: &BTreeMap<&str, u64>| {
        let max = *p99s.values().max().unwrap() as f64;
        let min = (*p99s.values().min().unwrap()).max(1) as f64;
        max / min
    };
    let fifo_ratio = ratio(&fifo);
    let drr_ratio = ratio(&drr);
    assert!(
        fifo_ratio > 2.0,
        "FIFO should spread per-client p99 waits past 2x, got {fifo_ratio:.2} ({fifo:?})"
    );
    assert!(
        drr_ratio <= 2.0,
        "DRR must keep per-client p99 waits within 2x, got {drr_ratio:.2} ({drr:?})"
    );
}

/// Flood protection: one client floods 300 jobs; three light clients submit
/// 10 each afterwards. Under FIFO the light jobs queue behind the whole
/// flood; under DRR they are served one per round.
#[test]
fn drr_shields_light_clients_from_a_flood() {
    let light_p99 = |policy| {
        let (sched, clock) = scheduler(policy);
        for _ in 0..300 {
            sched.submit("flood", JobMeta::new("flood", Priority::Interactive)).unwrap();
        }
        for client in ["l1", "l2", "l3"] {
            for _ in 0..10 {
                sched.submit(client, JobMeta::new(client, Priority::Interactive)).unwrap();
            }
        }
        let waits = drain_timed(&sched, &clock, 1);
        ["l1", "l2", "l3"].iter().map(|c| p99(&waits[c])).max().unwrap()
    };
    let fifo = light_p99(SchedPolicy::Fifo);
    let drr = light_p99(SchedPolicy::Drr);
    assert!(
        fifo >= 300,
        "FIFO light clients wait behind the whole flood, got p99 {fifo}"
    );
    assert!(
        drr <= fifo / 5,
        "DRR light p99 ({drr}) should be at least 5x better than FIFO ({fifo})"
    );
}

/// Deadline-tagged jobs behind a flood: under DRR they ride the EDF lane and
/// complete in time; under FIFO they all miss. Either way, every tagged job
/// is accounted as met or missed — never silently dropped.
#[test]
fn deadline_jobs_meet_under_edf_and_miss_under_fifo() {
    let run = |policy| {
        let (sched, clock) = scheduler(policy);
        for _ in 0..200 {
            sched.submit("flood", JobMeta::new("flood", Priority::Interactive)).unwrap();
        }
        for _ in 0..20 {
            sched
                .submit("dl", JobMeta::new("dl", Priority::Interactive).with_deadline_ms(50))
                .unwrap();
        }
        drain_timed(&sched, &clock, 1);
        sched.stats()
    };
    let fifo = run(SchedPolicy::Fifo);
    assert_eq!(fifo.deadline_met + fifo.deadline_misses, 20);
    assert_eq!(fifo.deadline_misses, 20, "FIFO: every tagged job waits ~200ms, all miss");
    let drr = run(SchedPolicy::Drr);
    assert_eq!(drr.deadline_met + drr.deadline_misses, 20);
    assert_eq!(drr.deadline_met, 20, "EDF lane: tagged jobs dispatch first and all meet");
}

/// The whole simulation is deterministic: two identical runs produce the
/// identical wait profile.
#[test]
fn virtual_time_simulation_is_deterministic() {
    assert_eq!(burst_skew_p99s(SchedPolicy::Drr), burst_skew_p99s(SchedPolicy::Drr));
    assert_eq!(burst_skew_p99s(SchedPolicy::Fifo), burst_skew_p99s(SchedPolicy::Fifo));
}
