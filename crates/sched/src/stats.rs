//! Scheduler observability counters.
//!
//! A [`SchedStats`] snapshot is cheap (one lock) and is what the serving
//! layer embeds in `Stats` protocol replies: queue depths, per-class
//! throughput, sheds, cancellations and deadline accounting.

use serde::{Deserialize, Serialize};

/// Counters of one priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Jobs currently queued (including this class's EDF-lane jobs).
    pub depth: usize,
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs handed to a worker.
    pub dispatched: u64,
    /// Jobs whose dispatch handle was dropped (worker finished with them).
    pub completed: u64,
    /// Submits rejected because the class queue was at its cap.
    pub shed: u64,
}

/// A point-in-time snapshot of the scheduler's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Active policy (`"fifo"` or `"drr"`).
    pub policy: String,
    /// Interactive-class counters.
    pub interactive: ClassStats,
    /// Batch-class counters.
    pub batch: ClassStats,
    /// Background-class counters.
    pub background: ClassStats,
    /// Total jobs currently queued across all classes.
    pub queued: usize,
    /// Jobs dispatched to a worker and not yet completed.
    pub active: usize,
    /// Queued jobs removed by [`Scheduler::cancel`](crate::Scheduler::cancel).
    pub cancelled: u64,
    /// Jobs dispatched already past their deadline with
    /// [`shed_expired`](crate::SchedConfig::shed_expired) set — handed to the
    /// worker flagged expired instead of being run. Every expired job is also
    /// counted in `deadline_misses` when its handle drops.
    pub expired: u64,
    /// Batch/Background jobs promoted past the strict class scan because
    /// they waited at least [`age_limit_ms`](crate::SchedConfig::age_limit_ms)
    /// (the starvation bound). Absent (0) on servers without an aging window.
    #[serde(default)]
    pub aged: u64,
    /// Deadline-tagged jobs completed on or before their deadline.
    pub deadline_met: u64,
    /// Deadline-tagged jobs completed after their deadline.
    pub deadline_misses: u64,
}

impl SchedStats {
    /// The class counters in priority order (interactive, batch, background).
    pub fn classes(&self) -> [ClassStats; 3] {
        [self.interactive, self.batch, self.background]
    }

    /// Total sheds across all classes.
    pub fn shed_total(&self) -> u64 {
        self.interactive.shed + self.batch.shed + self.background.shed
    }
}
