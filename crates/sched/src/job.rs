//! Job classification: priority classes and per-job scheduling metadata.

use serde::{Deserialize, Serialize};

/// The scheduling class of a job. Classes are strict: a queued job of a
/// higher class is always dispatched before any job of a lower class
/// (deadline-tagged jobs in the EDF lane come first of all under
/// [`SchedPolicy::Drr`](crate::SchedPolicy::Drr)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive foreground requests — the default.
    #[default]
    Interactive,
    /// Throughput work: elastic re-plan waves, bulk pre-warming.
    Batch,
    /// Best-effort work that must never delay the other classes.
    Background,
}

impl Priority {
    /// Every class, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Dense index of the class (0 = highest priority).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Lower-case class name, as used in stats and flag values.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// Per-job scheduling metadata supplied at submit time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Fair-queuing identity. Jobs sharing a client id share one DRR queue;
    /// the empty string is a valid (shared) identity and is the default.
    pub client: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Relative deadline: the job should complete within this many
    /// milliseconds of submission. Routes the job through the EDF lane under
    /// [`SchedPolicy::Drr`](crate::SchedPolicy::Drr); completion past the
    /// deadline is counted as a miss either way.
    pub deadline_after_ms: Option<u64>,
    /// DRR weight of this job's client (latest submit wins; minimum 1). A
    /// client of weight `w` receives `w` quantums of deficit per round.
    pub weight: u32,
    /// Deficit units this job consumes when dispatched (minimum 1).
    pub cost: u32,
    /// Observability trace id carried through the scheduler unchanged (0
    /// means untraced). The scheduler never interprets it; it lets a
    /// dispatched job's instrumentation attribute queue time to a request.
    pub trace_id: u64,
}

impl Default for JobMeta {
    fn default() -> Self {
        JobMeta {
            client: String::new(),
            priority: Priority::Interactive,
            deadline_after_ms: None,
            weight: 1,
            cost: 1,
            trace_id: 0,
        }
    }
}

impl JobMeta {
    /// Metadata for `client` at `priority`, with default weight and cost.
    pub fn new(client: impl Into<String>, priority: Priority) -> Self {
        JobMeta { client: client.into(), priority, ..JobMeta::default() }
    }

    /// This metadata with a relative deadline attached.
    pub fn with_deadline_ms(mut self, deadline_after_ms: u64) -> Self {
        self.deadline_after_ms = Some(deadline_after_ms);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_dense_and_ordered() {
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Priority::default(), Priority::Interactive);
    }

    #[test]
    fn priority_serializes_as_a_string() {
        let text = serde_json::to_string(&Priority::Batch).unwrap();
        assert_eq!(text, "\"Batch\"");
        let back: Priority = serde_json::from_str(&text).unwrap();
        assert_eq!(back, Priority::Batch);
    }
}
