//! # qsync-sched — priority, fairness and deadline-aware job scheduling
//!
//! The plan server's worker pool was strict FIFO: one client flooding slow
//! cold plans starves every other client, and there is no way to express "this
//! request is interactive" or "this answer is useless after 200 ms". This
//! crate provides the generic scheduler the serving layer now runs on:
//!
//! * **Priority classes** ([`Priority`]): `Interactive` > `Batch` >
//!   `Background`. Higher classes are always served first.
//! * **Per-client weighted fair queuing** ([`SchedPolicy::Drr`]): within a
//!   class, clients get deficit-round-robin service — a client flooding the
//!   queue cannot delay other clients' jobs behind its backlog. Client weights
//!   scale the per-round quantum.
//! * **EDF lane**: jobs tagged with a deadline are dispatched
//!   earliest-deadline-first, ahead of the priority classes. Jobs that
//!   complete past their deadline are counted as misses; with
//!   [`SchedConfig::shed_expired`] set, jobs already expired at dispatch time
//!   are handed to the worker flagged [`Dispatch::expired`] so it can answer
//!   without doing the work.
//! * **Cancellation**: queued jobs can be [cancelled](Scheduler::cancel) by
//!   the ticket returned from [`Scheduler::submit`].
//! * **Admission control**: per-class queue caps; a submit over the cap is
//!   rejected immediately ([`Rejected`]) and counted as a shed.
//!
//! Dispatch decisions depend only on queue contents, DRR state and sequence
//! numbers — under a single worker the dispatch order is fully deterministic
//! for a given submit order, which the tests rely on. Time enters only
//! through deadline bookkeeping, via a pluggable [`Clock`] ([`ManualClock`]
//! makes deadline tests deterministic too).
//!
//! The scheduler is generic over the job payload and transport-free: workers
//! are plain threads looping `while let Some(job) = sched.next() { ... }`.
//! [`Scheduler::quiesce`] blocks until no job is queued or running — the
//! serving layer's delta barrier.

#![warn(missing_docs)]

pub mod clock;
pub mod job;
pub mod scheduler;
pub mod stats;

pub use clock::{Clock, ManualClock, SystemClock};
pub use job::{JobMeta, Priority};
pub use scheduler::{Dispatch, Rejected, SchedConfig, SchedPolicy, Scheduler, SubmitError};
pub use stats::{ClassStats, SchedStats};
