//! The scheduler proper: submit/dispatch machinery, DRR state, EDF lane,
//! admission control and the quiesce barrier.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::{Clock, SystemClock};
use crate::job::{JobMeta, Priority};
use crate::stats::{ClassStats, SchedStats};

/// Dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict arrival order, ignoring class, client and deadline (the
    /// pre-scheduler behavior). Deadline misses are still counted.
    Fifo,
    /// EDF lane first, then priority classes, deficit round robin across
    /// client queues within a class — the default.
    #[default]
    Drr,
}

impl SchedPolicy {
    /// Lower-case policy name, as used in stats and flag values.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Drr => "drr",
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(SchedPolicy::Fifo),
            "drr" | "fair" => Ok(SchedPolicy::Drr),
            other => Err(format!("unknown scheduling policy {other:?} (fifo|drr)")),
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Dispatch policy.
    pub policy: SchedPolicy,
    /// Per-class queue caps, indexed by [`Priority::index`]. A submit that
    /// would push a class past its cap is rejected (shed). A cap of 0 sheds
    /// everything in that class.
    pub class_caps: [usize; 3],
    /// Deficit quantum credited per DRR round (scaled by the client weight).
    pub quantum: u32,
    /// When set, a deadline-tagged job whose deadline has already passed at
    /// dispatch time is handed to the worker flagged
    /// [`expired`](Dispatch::expired) so it can be answered without doing the
    /// work. When unset (the default) expired jobs run normally and only the
    /// miss is counted.
    pub shed_expired: bool,
    /// Starvation bound for the lower classes (DRR policy). When set, a
    /// Batch- or Background-class job that has waited at least this many
    /// milliseconds is dispatched ahead of the strict class scan (but still
    /// behind the EDF lane), so a saturated Interactive class cannot starve
    /// the lower classes forever. `None` (the default) keeps strict class
    /// priority.
    pub age_limit_ms: Option<u64>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: SchedPolicy::Drr,
            class_caps: [4096; 3],
            quantum: 1,
            shed_expired: false,
            age_limit_ms: None,
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The job's class queue is at its admission cap.
    QueueFull {
        /// The class whose queue was full.
        priority: Priority,
        /// The configured cap.
        cap: usize,
    },
    /// The scheduler has been closed; no further jobs are accepted.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { priority, cap } => {
                write!(f, "{} queue full (cap {cap}): request shed", priority.name())
            }
            SubmitError::Closed => f.write_str("scheduler closed"),
        }
    }
}

/// A rejected submission: the error plus the payload, handed back so the
/// caller can fall back (e.g. run the job inline or answer with an error).
#[derive(Debug)]
pub struct Rejected<T> {
    /// Why the job was rejected.
    pub error: SubmitError,
    /// The job payload, returned unconsumed.
    pub payload: T,
}

/// A job handed to a worker. Dropping the dispatch marks the job complete
/// (deadline accounting happens at drop time), so a panicking worker can
/// never wedge [`Scheduler::quiesce`].
pub struct Dispatch<T> {
    payload: Option<T>,
    meta: JobMeta,
    id: u64,
    seq: u64,
    enqueued_ms: u64,
    dispatched_ms: u64,
    deadline_ms: Option<u64>,
    expired: bool,
    shared: Arc<Shared<T>>,
}

impl<T> Dispatch<T> {
    /// The submit ticket of this job.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's scheduling metadata.
    pub fn meta(&self) -> &JobMeta {
        &self.meta
    }

    /// The job payload, by reference (`None` once taken).
    pub fn payload(&self) -> Option<&T> {
        self.payload.as_ref()
    }

    /// Take ownership of the payload. Panics if taken twice.
    pub fn take_payload(&mut self) -> T {
        self.payload.take().expect("dispatch payload already taken")
    }

    /// Clock time the job was submitted.
    pub fn enqueued_ms(&self) -> u64 {
        self.enqueued_ms
    }

    /// Clock time the job was handed to the worker.
    pub fn dispatched_ms(&self) -> u64 {
        self.dispatched_ms
    }

    /// Milliseconds the job spent queued.
    pub fn queue_wait_ms(&self) -> u64 {
        self.dispatched_ms.saturating_sub(self.enqueued_ms)
    }

    /// Absolute deadline on the scheduler clock, if the job carried one.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// `true` when the deadline had already passed at dispatch time and the
    /// scheduler is configured to shed expired jobs — the worker should
    /// answer without doing the work.
    pub fn expired(&self) -> bool {
        self.expired
    }
}

impl<T> fmt::Debug for Dispatch<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dispatch")
            .field("id", &self.id)
            .field("meta", &self.meta)
            .field("enqueued_ms", &self.enqueued_ms)
            .field("dispatched_ms", &self.dispatched_ms)
            .field("deadline_ms", &self.deadline_ms)
            .field("expired", &self.expired)
            .finish_non_exhaustive()
    }
}

impl<T> Drop for Dispatch<T> {
    fn drop(&mut self) {
        let now = self.shared.clock.now_ms();
        let mut st = self.shared.state.lock().expect("scheduler state poisoned");
        st.active -= 1;
        st.inflight.remove(&self.seq);
        st.counters.completed[self.meta.priority.index()] += 1;
        if let Some(deadline) = self.deadline_ms {
            if now > deadline {
                st.counters.deadline_misses += 1;
            } else {
                st.counters.deadline_met += 1;
            }
        }
        drop(st);
        self.shared.idle.notify_all();
    }
}

/// One queued job.
struct Queued<T> {
    payload: T,
    meta: JobMeta,
    seq: u64,
    enqueued_ms: u64,
    /// Absolute deadline on the scheduler clock.
    deadline_ms: Option<u64>,
}

/// Per-class DRR state: one bounded queue per client plus the round-robin
/// ring and deficit counters.
#[derive(Default)]
struct ClassState {
    /// Client → queued (job id, cost) in arrival order.
    queues: HashMap<String, VecDeque<(u64, u32)>>,
    /// Active clients in round-robin order (front = being served).
    ring: VecDeque<String>,
    /// Carried deficit per active client.
    deficit: HashMap<String, u64>,
    /// Latest weight seen per active client.
    weight: HashMap<String, u32>,
    /// Whether the current front client has received its per-visit quantum.
    credited_front: bool,
    /// Queued jobs of this class (including its EDF-lane jobs).
    depth: usize,
}

impl ClassState {
    fn enqueue(&mut self, client: &str, id: u64, cost: u32, weight: u32) {
        self.weight.insert(client.to_owned(), weight.max(1));
        match self.queues.get_mut(client) {
            Some(queue) => queue.push_back((id, cost)),
            None => {
                self.queues.insert(client.to_owned(), VecDeque::from([(id, cost)]));
                self.ring.push_back(client.to_owned());
            }
        }
    }

    /// Deficit-round-robin pop: serve the front client while its carried
    /// deficit affords the head job, otherwise rotate (crediting one quantum
    /// per visit). Deterministic for a given enqueue order.
    fn pop(&mut self, quantum: u32) -> Option<u64> {
        loop {
            let client = self.ring.front()?.clone();
            let Some(queue) = self.queues.get_mut(&client) else {
                // Ring entry without a queue: the client was drained.
                self.ring.pop_front();
                self.credited_front = false;
                continue;
            };
            if queue.is_empty() {
                self.queues.remove(&client);
                self.deficit.remove(&client);
                self.weight.remove(&client);
                self.ring.pop_front();
                self.credited_front = false;
                continue;
            }
            if !self.credited_front {
                let weight = self.weight.get(&client).copied().unwrap_or(1) as u64;
                *self.deficit.entry(client.clone()).or_insert(0) += quantum.max(1) as u64 * weight;
                self.credited_front = true;
            }
            let (id, cost) = *queue.front().expect("non-empty queue");
            let deficit = self.deficit.get_mut(&client).expect("credited client has deficit");
            if *deficit >= cost as u64 {
                *deficit -= cost as u64;
                queue.pop_front();
                if queue.is_empty() {
                    self.queues.remove(&client);
                    self.deficit.remove(&client);
                    self.weight.remove(&client);
                    self.ring.pop_front();
                    self.credited_front = false;
                }
                return Some(id);
            }
            // Insufficient deficit: rotate, carrying the deficit into the
            // next round (this is what lets expensive jobs eventually run).
            self.ring.pop_front();
            self.ring.push_back(client);
            self.credited_front = false;
        }
    }

    /// Remove a cancelled job from its client queue.
    fn remove(&mut self, client: &str, id: u64) -> bool {
        let Some(queue) = self.queues.get_mut(client) else { return false };
        let Some(pos) = queue.iter().position(|(jid, _)| *jid == id) else { return false };
        queue.remove(pos);
        // An emptied queue is cleaned up lazily when it reaches the ring
        // front; `pop` handles the empty case.
        true
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    submitted: [u64; 3],
    dispatched: [u64; 3],
    completed: [u64; 3],
    shed: [u64; 3],
    cancelled: u64,
    expired: u64,
    aged: u64,
    deadline_met: u64,
    deadline_misses: u64,
}

pub(crate) struct State<T> {
    next_id: u64,
    next_seq: u64,
    /// Job table: every queued job lives here; queues hold ids.
    jobs: HashMap<u64, Queued<T>>,
    /// FIFO policy: global arrival order.
    fifo: VecDeque<u64>,
    /// EDF lane (DRR policy): (absolute deadline, seq, id), earliest first.
    edf: BTreeSet<(u64, u64, u64)>,
    /// Aging index over queued Batch/Background class jobs:
    /// (enqueued_ms, seq, id), oldest first. Populated only when
    /// [`SchedConfig::age_limit_ms`] is set.
    age: BTreeSet<(u64, u64, u64)>,
    /// Submission seqs of every job not yet completed (queued **or** active),
    /// the epoch set behind [`Scheduler::quiesce_until`].
    inflight: BTreeSet<u64>,
    classes: [ClassState; 3],
    closed: bool,
    /// Dispatched but not yet completed.
    active: usize,
    counters: Counters,
}

pub(crate) struct Shared<T> {
    config: SchedConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) state: Mutex<State<T>>,
    /// Signalled when a job is queued or the scheduler closes.
    available: Condvar,
    /// Signalled when a job completes or is cancelled (quiesce waits here).
    pub(crate) idle: Condvar,
}

/// The scheduler. Share it by reference across worker threads (all methods
/// take `&self`); workers loop on [`next`](Scheduler::next).
pub struct Scheduler<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Scheduler<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler").field("stats", &self.stats()).finish()
    }
}

impl<T> Scheduler<T> {
    /// A scheduler over the system clock.
    pub fn new(config: SchedConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// A scheduler over an explicit clock (tests and virtual-time benches).
    pub fn with_clock(config: SchedConfig, clock: Arc<dyn Clock>) -> Self {
        Scheduler {
            shared: Arc::new(Shared {
                config,
                clock,
                state: Mutex::new(State {
                    next_id: 0,
                    next_seq: 0,
                    jobs: HashMap::new(),
                    fifo: VecDeque::new(),
                    edf: BTreeSet::new(),
                    age: BTreeSet::new(),
                    inflight: BTreeSet::new(),
                    classes: Default::default(),
                    closed: false,
                    active: 0,
                    counters: Counters::default(),
                }),
                available: Condvar::new(),
                idle: Condvar::new(),
            }),
        }
    }

    /// The scheduler's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.shared.clock
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.shared.state.lock().expect("scheduler state poisoned")
    }

    /// Submit a job. Returns the job's ticket (usable with
    /// [`cancel`](Scheduler::cancel)), or the payload back if the class queue
    /// is at its cap or the scheduler is closed.
    pub fn submit(&self, payload: T, meta: JobMeta) -> Result<u64, Rejected<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(Rejected { error: SubmitError::Closed, payload });
        }
        let class = meta.priority.index();
        let cap = self.shared.config.class_caps[class];
        if st.classes[class].depth >= cap {
            st.counters.shed[class] += 1;
            return Err(Rejected {
                error: SubmitError::QueueFull { priority: meta.priority, cap },
                payload,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let now = self.shared.clock.now_ms();
        // Saturate: deadline_after_ms is wire-controlled, and an overflow
        // here would wrap to an already-expired deadline (or panic in debug
        // builds while holding the scheduler lock).
        let deadline_ms = meta.deadline_after_ms.map(|d| now.saturating_add(d));
        match self.shared.config.policy {
            SchedPolicy::Fifo => st.fifo.push_back(id),
            SchedPolicy::Drr => match deadline_ms {
                Some(deadline) => {
                    st.edf.insert((deadline, seq, id));
                }
                None => {
                    let (cost, weight, client) = (meta.cost.max(1), meta.weight, meta.client.clone());
                    st.classes[class].enqueue(&client, id, cost, weight);
                    if self.shared.config.age_limit_ms.is_some() && class >= 1 {
                        st.age.insert((now, seq, id));
                    }
                }
            },
        }
        st.classes[class].depth += 1;
        st.counters.submitted[class] += 1;
        st.inflight.insert(seq);
        st.jobs.insert(id, Queued { payload, meta, seq, enqueued_ms: now, deadline_ms });
        drop(st);
        self.shared.available.notify_one();
        Ok(id)
    }

    /// Cancel a queued job by ticket. Returns `true` if the job was removed
    /// before dispatch; `false` if it was already dispatched, completed or
    /// never existed.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.lock();
        let Some(job) = st.jobs.remove(&id) else { return false };
        let class = job.meta.priority.index();
        match self.shared.config.policy {
            SchedPolicy::Fifo => {
                if let Some(pos) = st.fifo.iter().position(|jid| *jid == id) {
                    st.fifo.remove(pos);
                }
            }
            SchedPolicy::Drr => match job.deadline_ms {
                Some(deadline) => {
                    st.edf.remove(&(deadline, job.seq, id));
                }
                None => {
                    st.classes[class].remove(&job.meta.client, id);
                    st.age.remove(&(job.enqueued_ms, job.seq, id));
                }
            },
        }
        st.classes[class].depth -= 1;
        st.inflight.remove(&job.seq);
        st.counters.cancelled += 1;
        drop(st);
        self.shared.idle.notify_all();
        true
    }

    /// Aging check (DRR, [`SchedConfig::age_limit_ms`] set): when the oldest
    /// queued Batch/Background job has waited past the limit, dispatch it
    /// ahead of the strict class scan. Runs after the EDF lane so explicit
    /// deadlines still win.
    fn pop_aged_locked(&self, st: &mut State<T>) -> Option<u64> {
        let limit = self.shared.config.age_limit_ms?;
        let &(enqueued_ms, seq, id) = st.age.iter().next()?;
        let now = self.shared.clock.now_ms();
        if now.saturating_sub(enqueued_ms) < limit {
            return None;
        }
        st.age.remove(&(enqueued_ms, seq, id));
        let job = st.jobs.get(&id).expect("aged job present in job table");
        let (class, client) = (job.meta.priority.index(), job.meta.client.clone());
        let removed = st.classes[class].remove(&client, id);
        debug_assert!(removed, "aged job present in its class queue");
        st.counters.aged += 1;
        Some(id)
    }

    fn pop_locked(&self, st: &mut State<T>) -> Option<Dispatch<T>> {
        let id = match self.shared.config.policy {
            SchedPolicy::Fifo => st.fifo.pop_front()?,
            SchedPolicy::Drr => {
                if let Some(&entry) = st.edf.iter().next() {
                    st.edf.remove(&entry);
                    entry.2
                } else if let Some(id) = self.pop_aged_locked(st) {
                    id
                } else {
                    let quantum = self.shared.config.quantum;
                    let mut picked = None;
                    for class in &mut st.classes {
                        if let Some(id) = class.pop(quantum) {
                            picked = Some(id);
                            break;
                        }
                    }
                    picked?
                }
            }
        };
        let job = st.jobs.remove(&id).expect("queued job present in job table");
        st.age.remove(&(job.enqueued_ms, job.seq, id));
        let class = job.meta.priority.index();
        st.classes[class].depth -= 1;
        st.counters.dispatched[class] += 1;
        st.active += 1;
        let now = self.shared.clock.now_ms();
        let expired =
            self.shared.config.shed_expired && job.deadline_ms.is_some_and(|dl| now > dl);
        if expired {
            st.counters.expired += 1;
        }
        Some(Dispatch {
            payload: Some(job.payload),
            meta: job.meta,
            id,
            seq: job.seq,
            enqueued_ms: job.enqueued_ms,
            dispatched_ms: now,
            deadline_ms: job.deadline_ms,
            expired,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Dispatch the next job, blocking while the queues are empty. Returns
    /// `None` once the scheduler is closed and fully drained — the worker
    /// exit condition.
    pub fn next(&self) -> Option<Dispatch<T>> {
        let mut st = self.lock();
        loop {
            if let Some(dispatch) = self.pop_locked(&mut st) {
                return Some(dispatch);
            }
            if st.closed {
                return None;
            }
            st = self.shared.available.wait(st).expect("scheduler state poisoned");
        }
    }

    /// Dispatch the next job without blocking.
    pub fn try_next(&self) -> Option<Dispatch<T>> {
        let mut st = self.lock();
        self.pop_locked(&mut st)
    }

    /// Stop accepting submissions. Workers drain the remaining queue, then
    /// [`next`](Scheduler::next) returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.shared.available.notify_all();
    }

    /// An epoch cutoff covering every job submitted so far, for
    /// [`quiesce_until`](Scheduler::quiesce_until).
    pub fn barrier(&self) -> u64 {
        self.lock().next_seq
    }

    /// Block until every job submitted **before the call** has completed or
    /// been cancelled — the serving layer's delta barrier. Jobs submitted
    /// after the call (e.g. by other connections of a shared-scheduler
    /// server) are *not* waited for, so a barrier cannot starve under
    /// continuous traffic. Requires workers to be draining the queue (or the
    /// queue to be empty) to return.
    pub fn quiesce(&self) {
        let cutoff = self.barrier();
        self.quiesce_until(cutoff);
    }

    /// Block until every job submitted before the [`barrier`](Scheduler::barrier)
    /// snapshot `cutoff` has completed or been cancelled.
    pub fn quiesce_until(&self, cutoff: u64) {
        let mut st = self.lock();
        while st.inflight.iter().next().is_some_and(|&seq| seq < cutoff) {
            st = self.shared.idle.wait(st).expect("scheduler state poisoned");
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> SchedStats {
        let st = self.lock();
        let class = |i: usize| ClassStats {
            depth: st.classes[i].depth,
            submitted: st.counters.submitted[i],
            dispatched: st.counters.dispatched[i],
            completed: st.counters.completed[i],
            shed: st.counters.shed[i],
        };
        SchedStats {
            policy: self.shared.config.policy.name().to_owned(),
            interactive: class(0),
            batch: class(1),
            background: class(2),
            queued: st.jobs.len(),
            active: st.active,
            cancelled: st.counters.cancelled,
            expired: st.counters.expired,
            aged: st.counters.aged,
            deadline_met: st.counters.deadline_met,
            deadline_misses: st.counters.deadline_misses,
        }
    }

    /// Total DRR deficit currently banked across every class and client —
    /// credit granted by rotations but not yet spent on dispatches. An
    /// observability gauge: persistent growth means clients are being
    /// credited without their jobs fitting in a quantum.
    pub fn deficit_carry(&self) -> u64 {
        let st = self.lock();
        st.classes.iter().map(|c| c.deficit.values().sum::<u64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn drr_config() -> SchedConfig {
        SchedConfig { policy: SchedPolicy::Drr, ..SchedConfig::default() }
    }

    /// Drain the scheduler under a single logical worker, returning payloads
    /// in dispatch order.
    fn drain(sched: &Scheduler<&'static str>) -> Vec<&'static str> {
        let mut order = Vec::new();
        while let Some(mut job) = sched.try_next() {
            order.push(job.take_payload());
        }
        order
    }

    #[test]
    fn higher_classes_dispatch_first() {
        let sched = Scheduler::new(drr_config());
        sched.submit("bg", JobMeta::new("c", Priority::Background)).unwrap();
        sched.submit("batch", JobMeta::new("c", Priority::Batch)).unwrap();
        sched.submit("fg", JobMeta::new("c", Priority::Interactive)).unwrap();
        assert_eq!(drain(&sched), vec!["fg", "batch", "bg"]);
    }

    #[test]
    fn drr_round_robins_across_clients() {
        let sched = Scheduler::new(drr_config());
        for i in 0..3 {
            sched.submit(["a0", "a1", "a2"][i], JobMeta::new("a", Priority::Interactive)).unwrap();
        }
        sched.submit("b0", JobMeta::new("b", Priority::Interactive)).unwrap();
        sched.submit("c0", JobMeta::new("c", Priority::Interactive)).unwrap();
        // Client a flooded first, but b and c each get a turn per round.
        assert_eq!(drain(&sched), vec!["a0", "b0", "c0", "a1", "a2"]);
    }

    #[test]
    fn client_weights_scale_service_share() {
        let sched = Scheduler::new(drr_config());
        let heavy = JobMeta { weight: 2, ..JobMeta::new("heavy", Priority::Interactive) };
        for i in 0..4 {
            sched.submit(["h0", "h1", "h2", "h3"][i], heavy.clone()).unwrap();
        }
        for i in 0..2 {
            sched.submit(["l0", "l1"][i], JobMeta::new("light", Priority::Interactive)).unwrap();
        }
        // Weight 2 serves two jobs per round against light's one.
        assert_eq!(drain(&sched), vec!["h0", "h1", "l0", "h2", "h3", "l1"]);
    }

    #[test]
    fn job_cost_consumes_deficit() {
        let sched = Scheduler::new(drr_config());
        let expensive = JobMeta { cost: 3, ..JobMeta::new("a", Priority::Interactive) };
        sched.submit("big", expensive).unwrap();
        sched.submit("b0", JobMeta::new("b", Priority::Interactive)).unwrap();
        sched.submit("b1", JobMeta::new("b", Priority::Interactive)).unwrap();
        // The cost-3 job needs three rounds of quantum; b gets served while
        // a's deficit accumulates.
        assert_eq!(drain(&sched), vec!["b0", "b1", "big"]);
    }

    #[test]
    fn edf_lane_preempts_classes_and_orders_by_deadline() {
        let sched = Scheduler::new(drr_config());
        sched.submit("fg", JobMeta::new("c", Priority::Interactive)).unwrap();
        sched
            .submit("late", JobMeta::new("c", Priority::Background).with_deadline_ms(500))
            .unwrap();
        sched.submit("soon", JobMeta::new("c", Priority::Batch).with_deadline_ms(100)).unwrap();
        assert_eq!(drain(&sched), vec!["soon", "late", "fg"]);
    }

    #[test]
    fn fifo_policy_ignores_class_and_client() {
        let sched = Scheduler::new(SchedConfig { policy: SchedPolicy::Fifo, ..drr_config() });
        sched.submit("bg", JobMeta::new("a", Priority::Background)).unwrap();
        sched.submit("fg", JobMeta::new("b", Priority::Interactive)).unwrap();
        sched.submit("dl", JobMeta::new("c", Priority::Batch).with_deadline_ms(1)).unwrap();
        assert_eq!(drain(&sched), vec!["bg", "fg", "dl"]);
    }

    #[test]
    fn admission_cap_sheds_over_limit() {
        let mut config = drr_config();
        config.class_caps = [2, 0, 4096];
        let sched = Scheduler::new(config);
        sched.submit("a", JobMeta::new("c", Priority::Interactive)).unwrap();
        sched.submit("b", JobMeta::new("c", Priority::Interactive)).unwrap();
        let rejected = sched.submit("c", JobMeta::new("c", Priority::Interactive)).unwrap_err();
        assert_eq!(
            rejected.error,
            SubmitError::QueueFull { priority: Priority::Interactive, cap: 2 }
        );
        assert_eq!(rejected.payload, "c");
        // Cap 0 sheds everything in that class.
        assert!(sched.submit("d", JobMeta::new("c", Priority::Batch)).is_err());
        let stats = sched.stats();
        assert_eq!(stats.interactive.shed, 1);
        assert_eq!(stats.batch.shed, 1);
        assert_eq!(stats.interactive.depth, 2);
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let sched = Scheduler::new(drr_config());
        let keep = sched.submit("keep", JobMeta::new("c", Priority::Interactive)).unwrap();
        let drop_ = sched.submit("drop", JobMeta::new("c", Priority::Interactive)).unwrap();
        let timed =
            sched.submit("timed", JobMeta::new("c", Priority::Interactive).with_deadline_ms(9)).unwrap();
        assert!(sched.cancel(drop_));
        assert!(sched.cancel(timed), "EDF-lane jobs are cancellable too");
        assert!(!sched.cancel(drop_), "double cancel reports false");
        assert_eq!(drain(&sched), vec!["keep"]);
        assert!(!sched.cancel(keep), "dispatched jobs are not cancellable");
        let stats = sched.stats();
        assert_eq!(stats.cancelled, 2);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn deadline_accounting_counts_met_and_missed() {
        let clock = Arc::new(ManualClock::new());
        let sched: Scheduler<&str> = Scheduler::with_clock(drr_config(), clock.clone());
        sched.submit("met", JobMeta::new("c", Priority::Interactive).with_deadline_ms(100)).unwrap();
        sched.submit("miss", JobMeta::new("c", Priority::Interactive).with_deadline_ms(5)).unwrap();
        // EDF: the deadline-5 job dispatches first despite arriving second.
        let mut miss = sched.try_next().unwrap();
        assert_eq!(miss.take_payload(), "miss");
        assert!(!miss.expired());
        clock.advance(50); // the "work" overruns the 5 ms deadline
        drop(miss);
        let met = sched.try_next().unwrap();
        drop(met); // completes at t=50, within its 100 ms deadline
        let stats = sched.stats();
        assert_eq!(stats.deadline_met, 1);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.expired, 0, "shed_expired off: nothing is flagged expired");
    }

    #[test]
    fn shed_expired_flags_jobs_already_past_deadline() {
        let clock = Arc::new(ManualClock::new());
        let config = SchedConfig { shed_expired: true, ..drr_config() };
        let sched: Scheduler<&str> = Scheduler::with_clock(config, clock.clone());
        sched.submit("dead", JobMeta::new("c", Priority::Interactive).with_deadline_ms(10)).unwrap();
        clock.advance(25); // deadline passes while queued
        let job = sched.try_next().unwrap();
        assert!(job.expired());
        assert_eq!(job.queue_wait_ms(), 25);
        drop(job);
        let stats = sched.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.deadline_misses, 1, "expired jobs also count as misses");
    }

    #[test]
    fn wire_scale_deadline_saturates_instead_of_wrapping() {
        let clock = Arc::new(ManualClock::new());
        clock.advance(1_000);
        let config = SchedConfig { shed_expired: true, ..drr_config() };
        let sched: Scheduler<&str> = Scheduler::with_clock(config, clock);
        // u64::MAX ms is wire-controlled input: it must clamp to "never",
        // not wrap past zero into an already-expired deadline.
        sched
            .submit("far", JobMeta::new("c", Priority::Interactive).with_deadline_ms(u64::MAX))
            .unwrap();
        let job = sched.try_next().unwrap();
        assert!(!job.expired());
        assert_eq!(job.deadline_ms(), Some(u64::MAX));
        drop(job);
        assert_eq!(sched.stats().deadline_met, 1);
    }

    #[test]
    fn close_drains_then_ends_workers() {
        let sched = Scheduler::new(drr_config());
        sched.submit("a", JobMeta::default()).unwrap();
        sched.submit("b", JobMeta::default()).unwrap();
        sched.close();
        assert!(matches!(sched.submit("late", JobMeta::default()), Err(Rejected { error: SubmitError::Closed, .. })));
        let mut seen = Vec::new();
        while let Some(mut job) = sched.next() {
            seen.push(job.take_payload());
        }
        assert_eq!(seen, vec!["a", "b"]);
    }

    #[test]
    fn quiesce_waits_for_queued_and_active_jobs() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(drr_config()));
        for i in 0..16 {
            sched.submit(i, JobMeta::default()).unwrap();
        }
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let sched = Arc::clone(&sched);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    while let Some(job) = sched.next() {
                        done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        drop(job);
                    }
                });
            }
            sched.quiesce();
            assert_eq!(done.load(std::sync::atomic::Ordering::SeqCst), 16);
            let stats = sched.stats();
            assert_eq!(stats.queued, 0);
            assert_eq!(stats.active, 0);
            sched.close();
        });
    }

    #[test]
    fn quiesce_barrier_ignores_jobs_submitted_after_the_cutoff() {
        let sched: Scheduler<&str> = Scheduler::new(drr_config());
        sched.submit("before", JobMeta::default()).unwrap();
        let cutoff = sched.barrier();
        sched.submit("after", JobMeta::default()).unwrap();
        // Same client, arrival order: "before" dispatches first.
        let mut before = sched.try_next().unwrap();
        assert_eq!(before.take_payload(), "before");
        std::thread::scope(|scope| {
            let barrier = scope.spawn(|| sched.quiesce_until(cutoff));
            // Completing the lone pre-cutoff job releases the barrier even
            // though "after" is still queued — the scope would deadlock (and
            // the test time out) if the barrier waited for it.
            drop(before);
            barrier.join().unwrap();
        });
        assert_eq!(sched.stats().queued, 1, "the post-cutoff job is untouched");
    }

    #[test]
    fn cancellation_releases_the_quiesce_barrier() {
        let sched: Scheduler<&str> = Scheduler::new(drr_config());
        let ticket = sched.submit("doomed", JobMeta::default()).unwrap();
        let cutoff = sched.barrier();
        assert!(sched.cancel(ticket));
        // Nothing pre-cutoff is left in flight: returns without any worker.
        sched.quiesce_until(cutoff);
        sched.quiesce();
    }

    #[test]
    fn aging_bounds_background_wait_under_interactive_flood() {
        // Satellite: a sustained Interactive flood must not delay a queued
        // Background job past the configured aging window. Fully
        // deterministic on ManualClock.
        let clock = Arc::new(ManualClock::new());
        let config = SchedConfig { age_limit_ms: Some(100), ..drr_config() };
        let sched: Scheduler<String> = Scheduler::with_clock(config, clock.clone());
        sched.submit("bg".to_owned(), JobMeta::new("victim", Priority::Background)).unwrap();
        // Keep the Interactive class saturated: dispatch one flood job per
        // tick, submitting two more each time, and record when the
        // Background job finally comes out.
        let mut flood_seq = 0u64;
        let mut submit_flood = |n: u64| {
            for _ in 0..n {
                sched
                    .submit(format!("fg{flood_seq}"), JobMeta::new("flood", Priority::Interactive))
                    .unwrap();
                flood_seq += 1;
            }
        };
        submit_flood(4);
        let mut bg_wait_ms = None;
        for tick in 0..50u64 {
            let mut job = sched.try_next().expect("queues are never empty");
            let payload = job.take_payload();
            if payload == "bg" {
                bg_wait_ms = Some(job.queue_wait_ms());
                assert_eq!(job.dispatched_ms(), tick * 10);
                break;
            }
            drop(job);
            submit_flood(2); // the flood never lets the class drain
            clock.advance(10);
        }
        let waited = bg_wait_ms.expect("background job dispatched within the test horizon");
        // Promoted at the first dispatch at or past the 100 ms window —
        // never starved beyond it (one in-flight dispatch of slack).
        assert_eq!(waited, 100, "aged promotion fires exactly at the window");
        assert_eq!(sched.stats().aged, 1);
        assert_eq!(sched.stats().background.completed, 1);
    }

    #[test]
    fn aging_disabled_keeps_strict_class_priority() {
        let clock = Arc::new(ManualClock::new());
        let sched: Scheduler<&str> = Scheduler::with_clock(drr_config(), clock.clone());
        sched.submit("bg", JobMeta::new("victim", Priority::Background)).unwrap();
        sched.submit("fg", JobMeta::new("flood", Priority::Interactive)).unwrap();
        clock.advance(1_000_000); // ancient, but no window configured
        let mut first = sched.try_next().unwrap();
        assert_eq!(first.take_payload(), "fg");
        drop(first);
        assert_eq!(sched.stats().aged, 0);
    }

    #[test]
    fn aged_jobs_yield_to_the_edf_lane_and_cancel_cleans_the_index() {
        let clock = Arc::new(ManualClock::new());
        let config = SchedConfig { age_limit_ms: Some(50), ..drr_config() };
        let sched: Scheduler<&str> = Scheduler::with_clock(config, clock.clone());
        sched.submit("old-bg", JobMeta::new("c", Priority::Background)).unwrap();
        let doomed = sched.submit("doomed-batch", JobMeta::new("c", Priority::Batch)).unwrap();
        clock.advance(60);
        sched.submit("deadline", JobMeta::new("c", Priority::Batch).with_deadline_ms(10)).unwrap();
        assert!(sched.cancel(doomed), "queued aged job is cancellable");
        // EDF still wins over an over-age job; then the aged Background job
        // beats the strict scan (which has nothing above it anyway here).
        let mut a = sched.try_next().unwrap();
        assert_eq!(a.take_payload(), "deadline");
        drop(a);
        let mut b = sched.try_next().unwrap();
        assert_eq!(b.take_payload(), "old-bg");
        drop(b);
        let stats = sched.stats();
        assert_eq!(stats.aged, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn stats_snapshot_counts_throughput_per_class() {
        let sched = Scheduler::new(drr_config());
        sched.submit("a", JobMeta::new("c", Priority::Interactive)).unwrap();
        sched.submit("b", JobMeta::new("c", Priority::Batch)).unwrap();
        let job = sched.try_next().unwrap();
        drop(job);
        let stats = sched.stats();
        assert_eq!(stats.policy, "drr");
        assert_eq!(stats.interactive.submitted, 1);
        assert_eq!(stats.interactive.dispatched, 1);
        assert_eq!(stats.interactive.completed, 1);
        assert_eq!(stats.batch.submitted, 1);
        assert_eq!(stats.batch.depth, 1);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.shed_total(), 0);
    }
}
