//! Scheduler time source — re-exported from [`qsync_clock`].
//!
//! The `Clock` seam originally lived here; it now serves the whole stack
//! (scheduler deadlines, transport accept-backoff and drain windows, delta
//! coalescer windows), so the types moved to the dedicated `qsync-clock`
//! crate. This module remains as a compatibility re-export: existing
//! `qsync_sched::clock::{Clock, ManualClock, SystemClock}` paths keep
//! working unchanged.

pub use qsync_clock::{Clock, ManualClock, SystemClock};
