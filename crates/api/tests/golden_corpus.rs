//! The committed golden wire corpus: every v0 (legacy, un-enveloped) and v1
//! (enveloped) line in `tests/golden/` must keep parsing forever — that is
//! the protocol compatibility guarantee, turned from a convention into a
//! test. `qsync-serve`'s `protocol_compat` suite additionally replays the
//! corpus against a live server and pins the (normalized) reply bytes.
//!
//! Regenerate the canonical corpus after an intentional, additive protocol
//! change with:
//!
//! ```text
//! QSYNC_REGEN_GOLDEN=1 cargo test -p qsync-api --test golden_corpus
//! QSYNC_REGEN_GOLDEN=1 cargo test -p qsync-serve --test protocol_compat
//! ```
//!
//! and review the diff — removed or reshaped lines mean a breaking change,
//! which requires a protocol version bump instead.

use std::path::PathBuf;

use qsync_api::{
    parse_line, ClusterDelta, DeltaRequest, ModelSpec, PlanRequest, RequestEnvelope,
    ServerCommand, WireProto,
};
use qsync_cluster::topology::ClusterSpec;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn small_plan(id: u64) -> PlanRequest {
    PlanRequest::new(
        id,
        ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
        ClusterSpec::hybrid_small(),
    )
}

fn degrade(id: u64) -> DeltaRequest {
    let cluster = ClusterSpec::hybrid_small();
    let rank = cluster.inference_ranks()[0];
    DeltaRequest::new(
        id,
        cluster,
        ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 0.9 },
    )
}

/// A pre-scheduler (PR 1 era) plan line: no `priority`/`client_id`/
/// `deadline_ms`/`weight` (nor the later `trace_id`) keys at all. Absent
/// keys must keep deserializing to their defaults — the compat shim's
/// oldest obligation.
fn pre_scheduler_plan_line() -> String {
    let full = serde_json::to_string(&ServerCommand::Plan(small_plan(3))).unwrap();
    let mut value: serde::Value = serde_json::from_str(&full).unwrap();
    let serde::Value::Object(pairs) = &mut value else { unreachable!("command is an object") };
    let serde::Value::Object(plan) = &mut pairs[0].1 else { unreachable!("payload is an object") };
    plan.retain(|(k, _)| {
        !matches!(k.as_str(), "priority" | "client_id" | "deadline_ms" | "weight" | "trace_id")
    });
    serde_json::to_string(&value).unwrap()
}

/// The canonical v0 corpus: one legacy command serialization per line.
fn build_v0_lines() -> Vec<String> {
    let legacy = |cmd: &ServerCommand| serde_json::to_string(cmd).unwrap();
    let mut scheduled = small_plan(2);
    scheduled.priority = Some(Default::default());
    scheduled.client_id = Some("tenant-a".into());
    scheduled.deadline_ms = Some(60_000);
    let mut invalid = small_plan(4);
    invalid.memory_limit_fraction = Some(9.9);
    vec![
        legacy(&ServerCommand::Plan(small_plan(1))),
        legacy(&ServerCommand::Plan(scheduled)),
        pre_scheduler_plan_line(),
        legacy(&ServerCommand::Plan(invalid)),
        legacy(&ServerCommand::Stats { id: 5 }),
        legacy(&ServerCommand::Cancel { id: 6, plan_id: 999 }),
        legacy(&ServerCommand::Delta(degrade(7))),
        legacy(&ServerCommand::Delta(DeltaRequest::new(
            8,
            ClusterSpec::hybrid_small(),
            ClusterDelta::RankRemoved { rank: 99 },
        ))),
        legacy(&ServerCommand::Stats { id: 9 }),
    ]
}

/// The canonical v1 corpus: one envelope per line (including envelope-level
/// error shapes the server must answer deterministically).
fn build_v1_lines() -> Vec<String> {
    let enveloped =
        |cmd: ServerCommand| serde_json::to_string(&RequestEnvelope::v1(cmd)).unwrap();
    let mut weighted = small_plan(11);
    weighted.client_id = Some("tenant-b".into());
    weighted.weight = Some(4);
    let mut invalid = small_plan(12);
    invalid.throughput_tolerance = Some(-1.0);
    vec![
        enveloped(ServerCommand::Hello { id: 10, min_v: 0, max_v: 1 }),
        enveloped(ServerCommand::Plan(weighted)),
        enveloped(ServerCommand::Plan(invalid)),
        enveloped(ServerCommand::Stats { id: 13 }),
        // Stats precedes Plan on purpose: inline commands answer before the
        // scheduled plan is even submitted, so the lock-step replay
        // (qsync-serve's protocol_compat) sees one deterministic reply
        // order. Plan-before-Stats would race the worker thread against the
        // inline stats read — both the reply order and the hit counters
        // would depend on timing.
        enveloped(ServerCommand::Batch {
            id: 14,
            cmds: vec![
                ServerCommand::Stats { id: 16 },
                ServerCommand::Plan(small_plan(15)),
            ],
        }),
        enveloped(ServerCommand::Delta(degrade(17))),
        enveloped(ServerCommand::Cancel { id: 18, plan_id: 999 }),
        enveloped(ServerCommand::Subscribe { id: 19, adopt: false }),
        enveloped(ServerCommand::Unsubscribe { id: 20 }),
        // Envelope-level failures, pinned: unsupported version, missing cmd.
        r#"{"v":99,"id":21,"cmd":{"Stats":{"id":21}}}"#.to_string(),
        r#"{"v":1,"id":22}"#.to_string(),
        // Observability commands (additive, PR 6 era).
        enveloped(ServerCommand::Metrics { id: 23 }),
        enveloped(ServerCommand::Trace { id: 24, trace_id: 999, limit: Some(16) }),
        enveloped(ServerCommand::Resync { id: 25 }),
    ]
}

fn read_or_regen(name: &str, build: impl Fn() -> Vec<String>) -> Vec<String> {
    let path = golden_dir().join(name);
    if std::env::var_os("QSYNC_REGEN_GOLDEN").is_some() {
        let text = build().join("\n") + "\n";
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden corpus");
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden corpus {}: {e}", path.display()));
    text.lines().map(str::to_owned).collect()
}

#[test]
fn golden_corpus_is_current() {
    // The committed corpus must equal what this crate's canonical
    // serializations produce — a drifted corpus means the wire format
    // changed, which is exactly what this test exists to catch.
    assert_eq!(
        read_or_regen("v0_lines.jsonl", build_v0_lines),
        build_v0_lines(),
        "v0 corpus drifted from the canonical serialization; if the change is \
         intentional AND additive, regenerate with QSYNC_REGEN_GOLDEN=1"
    );
    assert_eq!(
        read_or_regen("v1_lines.jsonl", build_v1_lines),
        build_v1_lines(),
        "v1 corpus drifted from the canonical serialization; if the change is \
         intentional AND additive, regenerate with QSYNC_REGEN_GOLDEN=1"
    );
}

#[test]
fn every_v0_golden_line_parses_and_round_trips() {
    for (i, line) in read_or_regen("v0_lines.jsonl", build_v0_lines).iter().enumerate() {
        let parsed = parse_line(line)
            .unwrap_or_else(|e| panic!("v0 golden line {i} no longer parses: {:?}", e.error));
        assert_eq!(parsed.wire, WireProto::V0, "line {i} must take the legacy path");
        // Round trip: re-serializing and re-parsing yields the same command.
        let reserialized = serde_json::to_string(&parsed.cmd).unwrap();
        let back = parse_line(&reserialized)
            .unwrap_or_else(|e| panic!("line {i} reserialization broke: {:?}", e.error));
        assert_eq!(back.cmd, parsed.cmd, "line {i} does not round-trip");
    }
}

#[test]
fn every_v1_golden_line_parses_or_faults_deterministically() {
    for (i, line) in read_or_regen("v1_lines.jsonl", build_v1_lines).iter().enumerate() {
        match parse_line(line) {
            Ok(parsed) => {
                assert_eq!(parsed.wire, WireProto::V1, "line {i} must take the envelope path");
                let reserialized =
                    serde_json::to_string(&RequestEnvelope::v1(parsed.cmd.clone())).unwrap();
                let back = parse_line(&reserialized)
                    .unwrap_or_else(|e| panic!("line {i} reserialization broke: {:?}", e.error));
                assert_eq!(back.cmd, parsed.cmd, "line {i} does not round-trip");
            }
            Err(e) => {
                // The two committed failure shapes: they must stay failures,
                // reported on the v1 path with their envelope id echoed.
                assert_eq!(e.wire, WireProto::V1, "line {i} fails on the wrong path");
                assert!(e.error.id.is_some(), "line {i} fault lost its envelope id");
            }
        }
    }
}

#[test]
fn pre_scheduler_line_defaults_every_scheduling_field() {
    let parsed = parse_line(&pre_scheduler_plan_line()).expect("pre-scheduler line parses");
    let ServerCommand::Plan(request) = parsed.cmd else { panic!("plan command") };
    assert_eq!(request.priority, None);
    assert_eq!(request.client_id, None);
    assert_eq!(request.deadline_ms, None);
    assert_eq!(request.weight, None);
    let meta = request.job_meta();
    assert_eq!(meta.weight, 1);
}
