//! Cluster elasticity wire types: shape-change events, delta requests and
//! their outcomes.
//!
//! Production hybrid clusters change shape while jobs run: inference servers
//! join and leave with traffic, and co-located serving workloads squeeze the
//! memory/compute loaned to training (the paper's partial-sharing regime). A
//! [`ClusterDelta`] describes one such event; the serving engine applies it to
//! the affected cluster, invalidates exactly the cache entries planned against
//! the old shape, and re-plans them warm (see `qsync-serve`'s elasticity
//! layer, which owns the batching/coalescing machinery).

use serde::{Deserialize, Serialize};

use qsync_cluster::device::{Device, GpuModel};
use qsync_cluster::topology::ClusterSpec;

use crate::error::ApiError;
use crate::request::PlanResponse;

/// One cluster elasticity event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterDelta {
    /// A device joined the job. It is appended at the next free rank.
    RankAdded {
        /// GPU model of the new device.
        model: GpuModel,
        /// Memory fraction available to the job (1.0 = full).
        memory_fraction: f64,
        /// Compute fraction available to the job (1.0 = full).
        compute_fraction: f64,
    },
    /// The device at `rank` left the job; later ranks renumber down.
    RankRemoved {
        /// Rank of the departing device.
        rank: usize,
    },
    /// The device at `rank` degraded (e.g. a co-located tenant claimed
    /// resources): its share drops to the given fractions.
    Degraded {
        /// Rank of the affected device.
        rank: usize,
        /// New memory fraction in (0, 1].
        memory_fraction: f64,
        /// New compute fraction in (0, 1].
        compute_fraction: f64,
    },
}

impl ClusterDelta {
    /// Apply the event, producing the new cluster shape.
    ///
    /// Ranks stay dense: removal renumbers subsequent devices down by one,
    /// mirroring how a collective-communication job would re-rank after a
    /// membership change. Failures are [`ErrorCode::InvalidField`]
    /// (`field: "delta"`) with the same messages protocol v0 reported.
    ///
    /// [`ErrorCode::InvalidField`]: crate::ErrorCode::InvalidField
    pub fn apply(&self, cluster: &ClusterSpec) -> Result<ClusterSpec, ApiError> {
        let invalid = |message: String| ApiError::invalid_field("delta", message);
        let mut next = cluster.clone();
        match *self {
            ClusterDelta::RankAdded { model, memory_fraction, compute_fraction } => {
                if !(memory_fraction > 0.0
                    && memory_fraction <= 1.0
                    && compute_fraction > 0.0
                    && compute_fraction <= 1.0)
                {
                    return Err(invalid(format!(
                        "RankAdded: fractions must be in (0, 1], got memory {memory_fraction} compute {compute_fraction}"
                    )));
                }
                let rank = next.devices.len();
                let device = if memory_fraction >= 1.0 && compute_fraction >= 1.0 {
                    Device::full(rank, model)
                } else {
                    Device::partial(rank, model, memory_fraction, compute_fraction)
                };
                next.devices.push(device);
                next.name = format!("{}+1x{:?}", cluster.name, model);
            }
            ClusterDelta::RankRemoved { rank } => {
                if rank >= next.devices.len() {
                    return Err(invalid(format!(
                        "RankRemoved: rank {rank} out of bounds (world size {})",
                        next.devices.len()
                    )));
                }
                next.devices.remove(rank);
                for (i, d) in next.devices.iter_mut().enumerate() {
                    d.id = i;
                }
                next.name = format!("{}-rank{rank}", cluster.name);
            }
            ClusterDelta::Degraded { rank, memory_fraction, compute_fraction } => {
                let world = next.devices.len();
                let Some(device) = next.devices.get_mut(rank) else {
                    return Err(invalid(format!(
                        "Degraded: rank {rank} out of bounds (world size {world})"
                    )));
                };
                if !(0.0..=1.0).contains(&memory_fraction)
                    || !(0.0..=1.0).contains(&compute_fraction)
                    || memory_fraction == 0.0
                    || compute_fraction == 0.0
                {
                    return Err(invalid(format!(
                        "Degraded: fractions must be in (0, 1], got memory {memory_fraction} compute {compute_fraction}"
                    )));
                }
                *device = Device::partial(rank, device.model, memory_fraction, compute_fraction);
                next.name = format!("{}~rank{rank}", cluster.name);
            }
        }
        Ok(next)
    }
}

/// A delta request: the cluster the event applies to, plus the event.
///
/// The server matches cached plans by `cluster.fingerprint()`, so the cluster
/// given here must be byte-for-byte the shape earlier requests named (the
/// display name is ignored by the fingerprint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRequest {
    /// Caller-chosen id echoed in the response.
    pub id: u64,
    /// The cluster shape before the event.
    pub cluster: ClusterSpec,
    /// The event.
    pub delta: ClusterDelta,
    /// Observability correlation id (v1): threads through the delta wave —
    /// invalidation, warm re-plans, and every
    /// [`ServerEvent`](crate::ServerEvent) the wave emits carry it. Minted by
    /// the server when absent; echoed in [`DeltaResponse::trace_id`].
    pub trace_id: Option<u64>,
}

impl DeltaRequest {
    /// A delta request with no caller-chosen trace id.
    pub fn new(id: u64, cluster: ClusterSpec, delta: ClusterDelta) -> Self {
        DeltaRequest { id, cluster, delta, trace_id: None }
    }
}

/// Result of applying a delta: the invalidation count and the warm re-plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Fingerprint (hex) of the cluster this delta's step applied to. For a
    /// delta composed behind others in a coalesced group this is the
    /// intermediate shape, not the named base cluster.
    pub old_cluster_fingerprint: String,
    /// Fingerprint (hex) of the cluster after this delta's step.
    pub new_cluster_fingerprint: String,
    /// Cache entries invalidated by this delta's wave group (the base
    /// cluster's entries are invalidated once per group, and every member
    /// reports the same count).
    pub invalidated: usize,
    /// Number of deltas composed into this delta's group (1 when the delta
    /// was applied alone — the pre-batching behavior).
    pub coalesced: usize,
    /// Warm re-plans of the invalidated entries, keyed under the group's
    /// final cluster shape. Carried by the **last** delta of the group;
    /// earlier members report an empty list.
    pub replanned: Vec<PlanResponse>,
    /// The trace id this delta was applied under (echo of
    /// [`DeltaRequest::trace_id`], or the server-minted one). `None` from
    /// untraced paths (the direct engine API).
    pub trace_id: Option<u64>,
}

/// Counters of the batched elasticity layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Delta waves applied (one engine batch each).
    pub waves: u64,
    /// Delta events carried by those waves (`events > waves` means
    /// coalescing happened).
    pub events: u64,
    /// Re-plan chains produced across all waves.
    pub batched_replans: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorCode;

    #[test]
    fn rank_added_appends_at_next_rank() {
        let base = ClusterSpec::cluster_a(1, 1);
        let delta = ClusterDelta::RankAdded {
            model: GpuModel::T4,
            memory_fraction: 1.0,
            compute_fraction: 1.0,
        };
        let next = delta.apply(&base).unwrap();
        assert_eq!(next.world_size(), 3);
        assert_eq!(next.devices[2].id, 2);
        assert_eq!(next.devices[2].model, GpuModel::T4);
        assert_ne!(next.fingerprint(), base.fingerprint());
    }

    #[test]
    fn rank_removed_renumbers_densely() {
        let base = ClusterSpec::cluster_a(2, 2);
        let next = ClusterDelta::RankRemoved { rank: 1 }.apply(&base).unwrap();
        assert_eq!(next.world_size(), 3);
        let ids: Vec<usize> = next.devices.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let err = ClusterDelta::RankRemoved { rank: 9 }.apply(&base).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidField);
        assert_eq!(err.field.as_deref(), Some("delta"));
    }

    #[test]
    fn degradation_shrinks_memory() {
        let base = ClusterSpec::cluster_a(1, 1);
        let rank = base.inference_ranks()[0];
        let next = ClusterDelta::Degraded { rank, memory_fraction: 0.3, compute_fraction: 0.9 }
            .apply(&base)
            .unwrap();
        assert!(
            next.devices[rank].available_memory_bytes() < base.devices[rank].available_memory_bytes()
        );
        assert!(ClusterDelta::Degraded { rank, memory_fraction: 0.0, compute_fraction: 1.0 }
            .apply(&base)
            .is_err());
    }

    #[test]
    fn renaming_does_not_change_the_fingerprint() {
        let base = ClusterSpec::cluster_a(1, 1);
        let mut renamed = base.clone();
        renamed.name = "production-west-2".into();
        assert_eq!(base.fingerprint(), renamed.fingerprint());
    }
}
