//! # qsync-api — the versioned wire protocol of the plan-serving subsystem
//!
//! Every type that crosses the serving wire lives in this crate, shared by
//! the server (`qsync-serve`) and clients (`qsync-client`, tests, benches):
//!
//! * **Payloads** — [`PlanRequest`]/[`PlanResponse`] (with the full
//!   scheduling surface: `priority`, `client_id`, `deadline_ms`, and the DRR
//!   `weight`), [`DeltaRequest`]/[`DeltaResponse`], [`ModelSpec`], counters
//!   ([`CacheStats`], [`DeltaStats`], re-exported [`SchedStats`]).
//! * **Commands & replies** — [`ServerCommand`]/[`ServerReply`], one JSON
//!   object per line.
//! * **Versioning** — the v1 [`RequestEnvelope`]/[`ReplyEnvelope`]
//!   (`{"v":1,"id":…,"cmd":…}`), the `Hello` handshake advertising
//!   [`MIN_PROTOCOL_VERSION`]`..=`[`MAX_PROTOCOL_VERSION`], and the
//!   [`parse_line`] compatibility shim that keeps every legacy (v0,
//!   un-enveloped) line parsing unchanged — pinned by a committed golden
//!   corpus.
//! * **Structured errors** — [`ApiError`] ([`ErrorCode`] + message +
//!   offending field) replacing v0's bare error string on v1 connections.
//! * **Events** — [`ServerEvent`] lines streamed to `Subscribe`d
//!   connections: cache invalidations and warm re-plans as they happen.
//!
//! See `docs/PROTOCOL.md` in the repository root for the wire-format
//! reference and the compatibility policy.

#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod model;
pub mod request;
pub mod stats;
pub mod wire;

pub use delta::{ClusterDelta, DeltaRequest, DeltaResponse, DeltaStats};
pub use error::{ApiError, ErrorCode};
pub use model::ModelSpec;
pub use request::{IndicatorChoice, PlanOutcome, PlanRequest, PlanResponse};
pub use stats::{CacheStats, SubscriberStats};
pub use wire::{
    parse_line, render_reply, ParsedLine, PlanPayload, ReplyEnvelope, RequestEnvelope,
    ServerCommand, ServerEvent, ServerReply, WireError, WireProto, LEGACY_PROTOCOL_VERSION,
    MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

pub use qsync_sched::SchedStats;

pub use qsync_obs::{
    HistogramSnapshot, MetricsSnapshot, TraceSpan,
};
