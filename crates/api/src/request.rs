//! Plan request/response types of the serving protocol.
//!
//! These structs are the wire payload of the `Plan` command (one JSON object
//! per line, possibly inside a v1 [`RequestEnvelope`](crate::RequestEnvelope))
//! *and* the in-process API of `qsync-serve`'s `PlanEngine`.

use serde::{Deserialize, Serialize};

use qsync_cluster::device::Device;
use qsync_cluster::topology::ClusterSpec;
use qsync_core::plan::PrecisionPlan;
use qsync_core::system::QSyncConfig;
use qsync_graph::Fingerprint;
use qsync_sched::{JobMeta, Priority};

use crate::error::ApiError;
use crate::model::ModelSpec;

/// Which sensitivity indicator drives precision recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IndicatorChoice {
    /// QSync's variance-increment indicator (Proposition 3) — the default.
    #[default]
    Variance,
    /// The HAWQ-style Hessian baseline.
    Hessian,
    /// The random baseline.
    Random,
}

/// One plan request: a model from the zoo, a cluster, and planning constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Caller-chosen id echoed in the response (responses may arrive out of
    /// order under concurrency).
    pub id: u64,
    /// The model to plan for.
    pub model: ModelSpec,
    /// The cluster to plan against.
    pub cluster: ClusterSpec,
    /// Indicator choice.
    pub indicator: IndicatorChoice,
    /// Throughput constraint: maximum relative slowdown the recovery phase may
    /// accept over the fastest feasible plan. `None` uses the system default.
    pub throughput_tolerance: Option<f64>,
    /// Memory constraint: cap the inference devices' available memory to this
    /// fraction (the paper's ClusterB-style partial sharing). `None` leaves
    /// the cluster as specified.
    pub memory_limit_fraction: Option<f64>,
    /// Scheduling class of this request. `None` (and absent on the wire)
    /// defaults to [`Priority::Interactive`] — the pre-scheduler behavior.
    pub priority: Option<Priority>,
    /// Fair-queuing identity: requests sharing a `client_id` share one DRR
    /// queue and cannot starve other clients. `None` defaults to the
    /// **connection identity** on the streaming paths (each connection gets
    /// its own queue), so an anonymous flood on one connection cannot starve
    /// the rest of the fleet.
    pub client_id: Option<String>,
    /// Relative deadline in milliseconds from ingress. Routes the request
    /// through the scheduler's EDF lane; completion past the deadline is
    /// counted as a miss in `Stats` replies.
    pub deadline_ms: Option<u64>,
    /// DRR weight of this request's fair-queuing client (latest submit wins;
    /// clamped to a minimum of 1, absent means 1). A client of weight `w`
    /// receives `w` quantums of deficit per round — a paying tenant can be
    /// given a larger service share straight from the wire. Like the other
    /// scheduling fields it never enters [`cache_key`](Self::cache_key).
    pub weight: Option<u32>,
    /// Observability correlation id (v1): when set, the server threads this
    /// id through parse → scheduler → engine → reply and stamps it on every
    /// [`ServerEvent`](crate::ServerEvent) the request causes; the `Trace`
    /// command returns the recorded spans. When absent the server mints one
    /// and echoes it in [`PlanResponse::trace_id`]. Never part of
    /// [`cache_key`](Self::cache_key) — it changes *when* a plan is traced,
    /// never *what* is computed.
    pub trace_id: Option<u64>,
}

impl PlanRequest {
    /// A request with default constraints and the variance indicator.
    pub fn new(id: u64, model: ModelSpec, cluster: ClusterSpec) -> Self {
        PlanRequest {
            id,
            model,
            cluster,
            indicator: IndicatorChoice::Variance,
            throughput_tolerance: None,
            memory_limit_fraction: None,
            priority: None,
            client_id: None,
            deadline_ms: None,
            weight: None,
            trace_id: None,
        }
    }

    /// The scheduling metadata this request resolves to (absent fields fall
    /// back to the scheduler defaults: interactive, the anonymous client —
    /// which the streaming server replaces with the connection identity —
    /// weight 1, and no deadline).
    pub fn job_meta(&self) -> JobMeta {
        JobMeta {
            client: self.client_id.clone().unwrap_or_default(),
            priority: self.priority.unwrap_or_default(),
            deadline_after_ms: self.deadline_ms,
            weight: self.weight.unwrap_or(1).max(1),
            trace_id: self.trace_id.unwrap_or(0),
            ..JobMeta::default()
        }
    }

    /// Validate the request before any planning machinery sees it, so
    /// malformed wire input becomes an error reply instead of a worker panic
    /// (the cluster/device constructors assert on out-of-range fractions).
    ///
    /// Messages are unchanged from protocol v0; v1 additionally names the
    /// offending field in [`ApiError::field`].
    pub fn validate(&self) -> Result<(), ApiError> {
        if let Some(f) = self.memory_limit_fraction {
            if !(f > 0.0 && f <= 1.0) {
                return Err(ApiError::invalid_field(
                    "memory_limit_fraction",
                    format!("memory_limit_fraction must be in (0, 1], got {f}"),
                ));
            }
        }
        if let Some(t) = self.throughput_tolerance {
            if !(t.is_finite() && t >= 0.0) {
                return Err(ApiError::invalid_field(
                    "throughput_tolerance",
                    format!("throughput_tolerance must be a finite value >= 0, got {t}"),
                ));
            }
        }
        if self.cluster.devices.is_empty() {
            return Err(ApiError::invalid_field("cluster", "cluster has no devices"));
        }
        for (i, d) in self.cluster.devices.iter().enumerate() {
            if d.id != i {
                return Err(ApiError::invalid_field(
                    "cluster",
                    format!("cluster device at position {i} has rank {} (ranks must be dense and in order)", d.id),
                ));
            }
            let (m, c) = (d.share.memory_fraction(), d.share.compute_fraction());
            if !(m > 0.0 && m <= 1.0 && c > 0.0 && c <= 1.0) {
                return Err(ApiError::invalid_field(
                    "cluster",
                    format!("device {i} has share fractions outside (0, 1]: memory {m}, compute {c}"),
                ));
            }
        }
        if !(self.cluster.inter_cluster_gbs.is_finite() && self.cluster.inter_cluster_gbs > 0.0) {
            return Err(ApiError::invalid_field(
                "cluster",
                format!("inter_cluster_gbs must be finite and > 0, got {}", self.cluster.inter_cluster_gbs),
            ));
        }
        Ok(())
    }

    /// The cluster the planner actually sees: the requested cluster with the
    /// memory constraint (if any) applied to its inference devices.
    pub fn effective_cluster(&self) -> ClusterSpec {
        let mut cluster = self.cluster.clone();
        if let Some(fraction) = self.memory_limit_fraction {
            for d in cluster.devices.iter_mut() {
                if d.is_inference() {
                    let compute = d.share.compute_fraction();
                    *d = Device::partial(d.id, d.model, fraction, compute);
                }
            }
        }
        cluster
    }

    /// The planner configuration this request resolves to.
    pub fn config(&self) -> QSyncConfig {
        let mut config = QSyncConfig::default();
        if let Some(tol) = self.throughput_tolerance {
            config.throughput_tolerance = tol;
        }
        config
    }

    /// The content-addressed cache key: a stable fingerprint of the
    /// canonicalized model DAG, the *effective* cluster, and every constraint
    /// that changes what the allocator would produce. The request `id` and
    /// the scheduling fields (`priority`, `client_id`, `deadline_ms`,
    /// `weight`) are deliberately excluded — they change *when* a plan is
    /// computed, never *what* is computed.
    pub fn cache_key(&self) -> String {
        let mut fp = Fingerprint::new();
        fp.write_str("qsync_serve::PlanRequest/v1");
        let model_fp = self.model.build().fingerprint();
        fp.write_u64(model_fp as u64);
        fp.write_u64((model_fp >> 64) as u64);
        let cluster_fp = self.effective_cluster().fingerprint();
        fp.write_u64(cluster_fp as u64);
        fp.write_u64((cluster_fp >> 64) as u64);
        fp.write_serialize(&self.indicator);
        fp.write_f64(self.config().throughput_tolerance);
        fp.finish_hex()
    }

    /// Fingerprint of the cluster as requested (before constraints), the key
    /// elasticity events match on.
    pub fn cluster_fingerprint(&self) -> u128 {
        self.cluster.fingerprint()
    }
}

/// How the server produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanOutcome {
    /// Full cold planning: profile, initial setting, recovery.
    ColdPlanned,
    /// Served byte-identical from the plan cache.
    CacheHit,
    /// Re-planned from a cached assignment via the allocator's warm start.
    WarmReplanned,
}

/// One plan response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanResponse {
    /// Echo of the request id.
    pub id: u64,
    /// The content-addressed cache key this request resolved to.
    pub key: String,
    /// How the plan was produced.
    pub outcome: PlanOutcome,
    /// The precision plan.
    pub plan: PrecisionPlan,
    /// Predicted iteration latency of the plan (microseconds).
    pub predicted_iteration_us: f64,
    /// The allocator's `T_min` throughput bound (microseconds).
    pub t_min_us: f64,
    /// Precision promotions accepted during the recovery run that produced
    /// this plan (replayed unchanged on cache hits — it describes the plan's
    /// provenance, not this request's work).
    pub promotions_accepted: usize,
    /// Operators demoted while clamping a warm start to the shrunk device
    /// (also provenance; replayed on cache hits).
    pub warm_demotions: usize,
    /// Wall-clock time the server spent producing this response (microseconds).
    pub elapsed_us: u64,
    /// The trace id this request was served under (echo of
    /// [`PlanRequest::trace_id`], or the server-minted one). `None` from
    /// paths that do not trace (the schedulerless one-shot engine API).
    pub trace_id: Option<u64>,
}

impl PlanResponse {
    /// The serialized plan. Serialization is deterministic, so this is
    /// byte-identical across cache hits of the same key.
    pub fn plan_json(&self) -> String {
        self.plan.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> PlanRequest {
        PlanRequest::new(
            7,
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ClusterSpec::hybrid_small(),
        )
    }

    #[test]
    fn cache_key_ignores_request_id() {
        let a = request();
        let mut b = request();
        b.id = 99;
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn cache_key_sees_constraints() {
        let a = request();
        let mut b = request();
        b.memory_limit_fraction = Some(0.3);
        let mut c = request();
        c.throughput_tolerance = Some(0.5);
        let mut d = request();
        d.indicator = IndicatorChoice::Random;
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn effective_cluster_caps_inference_memory_only() {
        let mut req = request();
        req.memory_limit_fraction = Some(0.25);
        let base = req.cluster.clone();
        let eff = req.effective_cluster();
        for (b, e) in base.devices.iter().zip(eff.devices.iter()) {
            if b.is_inference() {
                assert!(e.available_memory_bytes() < b.available_memory_bytes());
            } else {
                assert_eq!(e.available_memory_bytes(), b.available_memory_bytes());
            }
        }
    }

    #[test]
    fn validate_rejects_malformed_wire_input_naming_the_field() {
        let mut bad_mem = request();
        bad_mem.memory_limit_fraction = Some(1.5);
        let err = bad_mem.validate().unwrap_err();
        assert_eq!(err.code, crate::ErrorCode::InvalidField);
        assert_eq!(err.field.as_deref(), Some("memory_limit_fraction"));
        bad_mem.memory_limit_fraction = Some(0.0);
        assert!(bad_mem.validate().is_err());
        bad_mem.memory_limit_fraction = Some(f64::NAN);
        assert!(bad_mem.validate().is_err());

        let mut bad_tol = request();
        bad_tol.throughput_tolerance = Some(-0.1);
        let err = bad_tol.validate().unwrap_err();
        assert_eq!(err.field.as_deref(), Some("throughput_tolerance"));

        let mut empty = request();
        empty.cluster.devices.clear();
        assert_eq!(empty.validate().unwrap_err().field.as_deref(), Some("cluster"));

        let mut sparse = request();
        sparse.cluster.devices[1].id = 7;
        assert!(sparse.validate().is_err());

        assert!(request().validate().is_ok());
    }

    #[test]
    fn cache_key_ignores_scheduling_fields() {
        let a = request();
        let mut b = request();
        b.priority = Some(Priority::Background);
        b.client_id = Some("tenant-42".into());
        b.deadline_ms = Some(250);
        b.weight = Some(8);
        b.trace_id = Some(77);
        assert_eq!(a.cache_key(), b.cache_key());
        let meta = b.job_meta();
        assert_eq!(meta.priority, Priority::Background);
        assert_eq!(meta.client, "tenant-42");
        assert_eq!(meta.deadline_after_ms, Some(250));
        assert_eq!(meta.weight, 8);
    }

    #[test]
    fn wire_weight_zero_clamps_to_one() {
        let mut req = request();
        req.weight = Some(0);
        assert_eq!(req.job_meta().weight, 1, "weight 0 would stall the DRR queue");
        req.weight = None;
        assert_eq!(req.job_meta().weight, 1);
    }

    #[test]
    fn wire_input_without_scheduling_fields_still_parses() {
        // A pre-scheduler client request (no priority/client_id/deadline_ms/
        // weight/trace_id keys at all) must deserialize to the defaults.
        let full = serde_json::to_string(&request()).unwrap();
        let mut value: serde::Value = serde_json::from_str(&full).unwrap();
        let serde::Value::Object(pairs) = &mut value else { panic!("request serializes as object") };
        let before = pairs.len();
        pairs.retain(|(k, _)| {
            !matches!(k.as_str(), "priority" | "client_id" | "deadline_ms" | "weight" | "trace_id")
        });
        assert_eq!(pairs.len(), before - 5, "all five post-v0 keys were present");
        let legacy = serde_json::to_string(&value).unwrap();
        let parsed: PlanRequest = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed, request());
        let meta = parsed.job_meta();
        assert_eq!(meta.priority, Priority::Interactive);
        assert_eq!(meta.client, "");
        assert_eq!(meta.deadline_after_ms, None);
        assert_eq!(meta.weight, 1);
    }

    #[test]
    fn request_round_trips_through_json() {
        let mut req = request();
        req.throughput_tolerance = Some(0.01);
        req.priority = Some(Priority::Batch);
        req.client_id = Some("tenant-7".into());
        req.deadline_ms = Some(1500);
        req.weight = Some(4);
        req.trace_id = Some(321);
        let text = serde_json::to_string_pretty(&req).unwrap();
        let back: PlanRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, req);
    }
}
