//! Model specifications: the request-facing handle into the `qsync_graph`
//! model zoo.
//!
//! Requests name a model *constructively* (zoo entry + hyperparameters) rather
//! than shipping a serialized DAG, which keeps request payloads small and
//! guarantees the server plans against exactly the graphs the evaluation uses.

use serde::{Deserialize, Serialize};

use qsync_graph::models;
use qsync_graph::ModelDag;

/// A buildable model from the zoo, with the hyperparameters that shape its DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The small executable MLP used by tests and the training engine.
    SmallMlp {
        /// Per-device batch size.
        batch: usize,
        /// Input feature dimension.
        in_features: usize,
        /// Hidden width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
    },
    /// The small executable CNN (contains BatchNorm).
    SmallCnn {
        /// Per-device batch size.
        batch: usize,
        /// Input image side length.
        image: usize,
        /// Number of classes.
        classes: usize,
    },
    /// ResNet-50 at a given batch size and image resolution.
    Resnet50 {
        /// Per-device batch size.
        batch: usize,
        /// Input image side length.
        image: usize,
    },
    /// VGG-16.
    Vgg16 {
        /// Per-device batch size.
        batch: usize,
        /// Input image side length.
        image: usize,
    },
    /// VGG-16 with BatchNorm.
    Vgg16Bn {
        /// Per-device batch size.
        batch: usize,
        /// Input image side length.
        image: usize,
    },
    /// BERT-base.
    BertBase {
        /// Per-device batch size.
        batch: usize,
        /// Sequence length.
        seq: usize,
    },
    /// RoBERTa-base.
    RobertaBase {
        /// Per-device batch size.
        batch: usize,
        /// Sequence length.
        seq: usize,
    },
}

impl ModelSpec {
    /// Build the model DAG this spec describes.
    pub fn build(&self) -> ModelDag {
        match *self {
            ModelSpec::SmallMlp { batch, in_features, hidden, classes } => {
                models::small_mlp(batch, in_features, hidden, classes)
            }
            ModelSpec::SmallCnn { batch, image, classes } => models::small_cnn(batch, image, classes),
            ModelSpec::Resnet50 { batch, image } => models::resnet50(batch, image),
            ModelSpec::Vgg16 { batch, image } => models::vgg16(batch, image),
            ModelSpec::Vgg16Bn { batch, image } => models::vgg16bn(batch, image),
            ModelSpec::BertBase { batch, seq } => models::bert_base(batch, seq),
            ModelSpec::RobertaBase { batch, seq } => models::roberta_base(batch, seq),
        }
    }

    /// Short display name of the zoo entry.
    pub fn family(&self) -> &'static str {
        match self {
            ModelSpec::SmallMlp { .. } => "small_mlp",
            ModelSpec::SmallCnn { .. } => "small_cnn",
            ModelSpec::Resnet50 { .. } => "resnet50",
            ModelSpec::Vgg16 { .. } => "vgg16",
            ModelSpec::Vgg16Bn { .. } => "vgg16bn",
            ModelSpec::BertBase { .. } => "bert",
            ModelSpec::RobertaBase { .. } => "roberta",
        }
    }

    /// Parse a CLI-style spec: `family[:batch[,extra]]` where `extra` is the
    /// image side for vision models / sequence length for transformers.
    ///
    /// Examples: `bert`, `bert:4,64`, `resnet50:2,32`, `small_mlp:64`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (family, args) = match s.split_once(':') {
            Some((f, a)) => (f, a),
            None => (s, ""),
        };
        let nums: Vec<usize> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',')
                .map(|p| p.trim().parse::<usize>().map_err(|e| format!("bad number {p:?}: {e}")))
                .collect::<Result<_, _>>()?
        };
        let get = |i: usize, default: usize| nums.get(i).copied().unwrap_or(default);
        match family {
            "small_mlp" => Ok(ModelSpec::SmallMlp {
                batch: get(0, 64),
                in_features: get(1, 512),
                hidden: get(2, 1024),
                classes: get(3, 16),
            }),
            "small_cnn" => {
                Ok(ModelSpec::SmallCnn { batch: get(0, 16), image: get(1, 16), classes: get(2, 10) })
            }
            "resnet50" => Ok(ModelSpec::Resnet50 { batch: get(0, 2), image: get(1, 32) }),
            "vgg16" => Ok(ModelSpec::Vgg16 { batch: get(0, 2), image: get(1, 32) }),
            "vgg16bn" => Ok(ModelSpec::Vgg16Bn { batch: get(0, 2), image: get(1, 32) }),
            "bert" => Ok(ModelSpec::BertBase { batch: get(0, 2), seq: get(1, 16) }),
            "roberta" => Ok(ModelSpec::RobertaBase { batch: get(0, 2), seq: get(1, 16) }),
            other => Err(format!(
                "unknown model family {other:?} (expected one of small_mlp, small_cnn, resnet50, vgg16, vgg16bn, bert, roberta)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds_a_valid_dag() {
        let specs = [
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ModelSpec::SmallCnn { batch: 4, image: 16, classes: 10 },
            ModelSpec::Resnet50 { batch: 2, image: 32 },
            ModelSpec::Vgg16 { batch: 2, image: 32 },
            ModelSpec::Vgg16Bn { batch: 2, image: 32 },
            ModelSpec::BertBase { batch: 2, seq: 16 },
            ModelSpec::RobertaBase { batch: 2, seq: 16 },
        ];
        for spec in specs {
            let dag = spec.build();
            assert!(!dag.is_empty(), "{spec:?} built an empty dag");
            assert_eq!(dag.topo_order().len(), dag.len());
        }
    }

    #[test]
    fn parse_accepts_defaults_and_overrides() {
        assert_eq!(ModelSpec::parse("bert").unwrap(), ModelSpec::BertBase { batch: 2, seq: 16 });
        assert_eq!(
            ModelSpec::parse("resnet50:4,64").unwrap(),
            ModelSpec::Resnet50 { batch: 4, image: 64 }
        );
        assert!(ModelSpec::parse("alexnet").is_err());
        assert!(ModelSpec::parse("bert:x").is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ModelSpec::BertBase { batch: 4, seq: 32 };
        let text = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }
}
