//! Machine-readable protocol errors.
//!
//! Protocol v0 reported every failure as a bare string
//! (`ServerReply::Error { id, message }`). Version 1 replaces it with
//! [`ApiError`]: a stable [`ErrorCode`] a client can branch on, the
//! human-readable message (unchanged from v0, so legacy renderings stay
//! byte-identical), and — for validation failures — the offending field.

use serde::{Deserialize, Serialize};

/// Stable, machine-readable error categories of the serving protocol.
///
/// Codes are part of the wire contract: existing codes never change meaning,
/// new codes may be added in later protocol versions (clients should treat an
/// unknown code like [`ErrorCode::Internal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The input line (or an envelope's `cmd`) did not parse as a command.
    Parse,
    /// The envelope named a protocol version outside the server's supported
    /// range (see the `Hello` exchange).
    UnsupportedVersion,
    /// A request field failed validation; [`ApiError::field`] names it.
    InvalidField,
    /// Admission control shed the request: its class queue was at capacity.
    QueueFull,
    /// The request's deadline expired before planning started.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts this command.
    ShuttingDown,
    /// The command is not available on this serving path (e.g. `Subscribe`
    /// on the schedulerless one-shot path).
    Unsupported,
    /// A token-bucket rate limit (per-connection or per-client) shed the
    /// command. The request was not admitted; retrying after a backoff is
    /// safe for any command.
    RateLimited,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    /// Stable lower-snake-case name of the code (for logs and CLIs).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::InvalidField => "invalid_field",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured protocol error: code, message, offending field.
///
/// `message` carries exactly the string protocol v0 put in its bare
/// `Error { message }` reply, so rendering an `ApiError` for a legacy (v0)
/// client is lossless and byte-identical to the pre-v1 server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiError {
    /// Echo of the failing command's id, when one could be parsed.
    pub id: Option<u64>,
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable reason (the v0 error string, unchanged).
    pub message: String,
    /// The request field that failed validation, if the failure is
    /// field-scoped ([`ErrorCode::InvalidField`], some
    /// [`ErrorCode::Parse`] cases).
    pub field: Option<String>,
}

impl ApiError {
    /// An error with a code and message, no id and no field.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError { id: None, code, message: message.into(), field: None }
    }

    /// This error with the failing command's id attached.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// This error with the offending field named.
    pub fn with_field(mut self, field: impl Into<String>) -> Self {
        self.field = Some(field.into());
        self
    }

    /// A field-validation error.
    pub fn invalid_field(field: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError::new(ErrorCode::InvalidField, message).with_field(field)
    }
}

/// Displays the bare message — exactly what protocol v0 put on the wire and
/// what the `qsync-serve` CLI prints.
impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_bare_v0_message() {
        let err = ApiError::invalid_field("memory_limit_fraction", "must be in (0, 1]").with_id(7);
        assert_eq!(err.to_string(), "must be in (0, 1]");
        assert_eq!(err.id, Some(7));
        assert_eq!(err.field.as_deref(), Some("memory_limit_fraction"));
    }

    #[test]
    fn codes_round_trip_through_json() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::UnsupportedVersion,
            ErrorCode::InvalidField,
            ErrorCode::QueueFull,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::Unsupported,
            ErrorCode::RateLimited,
            ErrorCode::Internal,
        ] {
            let text = serde_json::to_string(&code).unwrap();
            let back: ErrorCode = serde_json::from_str(&text).unwrap();
            assert_eq!(back, code);
            assert!(!code.name().is_empty());
        }
    }
}
