//! The line protocol: commands, replies, the versioned envelope and the
//! legacy-compatibility parse shim.
//!
//! # Versions
//!
//! * **v0 (legacy)** — one bare [`ServerCommand`] JSON object per line, one
//!   bare [`ServerReply`] object per reply line, errors as
//!   `Error { id, message }`. Every v0 line ever accepted still parses (and
//!   draws a byte-identical reply); this is pinned by the committed golden
//!   corpus in `crates/api/tests/golden/`.
//! * **v1 (enveloped)** — requests wrapped in a [`RequestEnvelope`]
//!   `{"v":1,"id":…,"cmd":{…}}`, replies in a [`ReplyEnvelope`]
//!   `{"v":1,"reply":{…}}`. v1 adds the `Hello` version handshake, wire-level
//!   `Batch` commands, `Subscribe`/[`ServerEvent`] streaming, per-client DRR
//!   `weight` on plan requests, and structured [`ApiError`]s (the `Fault`
//!   reply) in place of the bare error string.
//!
//! A server distinguishes the two per **line**: an object with a `"v"` key is
//! an envelope, anything else takes the legacy path ([`parse_line`]). One
//! connection may mix both; each command is answered in the form it arrived
//! in.
//!
//! # Compatibility policy
//!
//! Within a protocol version, changes are additive only: new optional request
//! fields (absent fields deserialize to their defaults), new reply fields at
//! the end of a struct, new enum variants. Anything that would change the
//! meaning or serialized bytes of an existing line is a new protocol version,
//! negotiated through `Hello`.

use serde::{Deserialize, Serialize};

use qsync_graph::PrecisionDag;
use qsync_obs::{MetricsSnapshot, TraceSpan};
use qsync_sched::SchedStats;

use crate::delta::{DeltaRequest, DeltaResponse, DeltaStats};
use crate::error::{ApiError, ErrorCode};
use crate::request::{PlanOutcome, PlanRequest, PlanResponse};
use crate::stats::{CacheStats, SubscriberStats};

/// The legacy, un-enveloped line form (bare `ServerCommand`/`ServerReply`).
pub const LEGACY_PROTOCOL_VERSION: u32 = 0;
/// The current envelope protocol version.
pub const PROTOCOL_VERSION: u32 = 1;
/// Lowest protocol version this crate speaks (the legacy line form).
pub const MIN_PROTOCOL_VERSION: u32 = LEGACY_PROTOCOL_VERSION;
/// Highest protocol version this crate speaks.
pub const MAX_PROTOCOL_VERSION: u32 = PROTOCOL_VERSION;

/// One input line of the serving protocol.
///
/// The first four variants are protocol v0 and serialize exactly as they
/// always have; the remaining variants were introduced with v1 (they parse
/// un-enveloped too, but v0 clients by definition never send them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerCommand {
    /// Request a plan.
    Plan(PlanRequest),
    /// Apply a cluster elasticity event (invalidate + warm re-plan).
    Delta(DeltaRequest),
    /// Read cache, scheduler and elasticity counters.
    Stats {
        /// Caller-chosen id echoed in the reply.
        id: u64,
    },
    /// Cancel a still-queued plan request submitted on this connection.
    Cancel {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// The `id` of the plan request to cancel.
        plan_id: u64,
    },
    /// Version handshake (v1): the client announces the protocol range it
    /// speaks; the server replies with [`ServerReply::Hello`] advertising its
    /// own supported range.
    Hello {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// Lowest protocol version the client speaks.
        min_v: u32,
        /// Highest protocol version the client speaks.
        max_v: u32,
    },
    /// Wire-level batch (v1): the inner commands are dispatched in order and
    /// each produces its **own** reply (correlate by the inner ids — plans
    /// may still complete out of order). Nested batches are rejected.
    Batch {
        /// Caller-chosen id, echoed only in a `Fault` if the batch itself is
        /// rejected (the accepted case produces per-command replies only).
        id: u64,
        /// The commands to dispatch.
        cmds: Vec<ServerCommand>,
    },
    /// Subscribe this connection to the server's event stream (v1): delta
    /// invalidation and warm re-plan events arrive as
    /// [`ServerReply::Event`] lines as they happen, instead of being polled
    /// out of `Stats` counters.
    Subscribe {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// Request full plan payloads on completion events (v1, additive):
        /// when `true`, [`ServerEvent::Replanned`] and
        /// [`ServerEvent::PlanReady`] lines sent to this connection carry an
        /// `adopt` payload (request + response + warm-start precision DAG) a
        /// replica can insert straight into its own cache. Plain subscribers
        /// receive the same events with `adopt: null`. Absent on the wire
        /// deserializes to `false` — the pre-replication behavior.
        #[serde(default)]
        adopt: bool,
    },
    /// Stop this connection's event stream (v1).
    Unsubscribe {
        /// Caller-chosen id echoed in the reply.
        id: u64,
    },
    /// Read the server's full metrics registry (v1): counters, gauges and
    /// latency histograms across every layer — transport, scheduler, engine,
    /// cache, delta pipeline. The same data the admin port's text exposition
    /// renders.
    Metrics {
        /// Caller-chosen id echoed in the reply.
        id: u64,
    },
    /// Fetch the recorded trace spans for one trace id (v1), reconstructing
    /// a request's journey parse → dispatch → cache → plan → reply write.
    Trace {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// The trace id to look up (from [`PlanResponse`]`::trace_id`,
        /// [`DeltaResponse`]`::trace_id`, or a stamped [`ServerEvent`]).
        trace_id: u64,
        /// Return at most this many spans (most recent; absent means all
        /// retained).
        limit: Option<usize>,
    },
    /// Re-baseline this connection's event stream after a gap (v1): the
    /// reply carries the server's current event `seq` and the cache's
    /// resident keys, so a slow consumer that lost events can rebuild its
    /// view instead of resubscribing blind.
    Resync {
        /// Caller-chosen id echoed in the reply.
        id: u64,
    },
    /// Write a plan-store snapshot (v1 admin): persist the current plan
    /// cache and initial-setting memo table atomically to disk in the
    /// qsync-store format. Answered with [`ServerReply::Snapshotted`].
    Snapshot {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// Target file path. `None` uses the server's configured `--store`
        /// path (a fault if the server has none).
        path: Option<String>,
    },
    /// Load a plan-store snapshot (v1 admin): verify and warm the cache and
    /// memo table from a snapshot file. A snapshot that fails verification
    /// (checksum, truncation, wrong magic) changes nothing and faults; a
    /// verified one is merged entry-by-entry, skipping records this server
    /// does not understand. Answered with [`ServerReply::Loaded`].
    Load {
        /// Caller-chosen id echoed in the reply.
        id: u64,
        /// Source file path. `None` uses the server's configured `--store`
        /// path (a fault if the server has none).
        path: Option<String>,
    },
    /// Fetch the server's plan store over the wire (v1 replication): the
    /// reply embeds a full snapshot, serialized exactly as
    /// [`Snapshot`](Self::Snapshot) would write it to disk. A `--follow`
    /// replica bootstraps from this before riding the event stream.
    FetchSnapshot {
        /// Caller-chosen id echoed in the reply.
        id: u64,
    },
}

impl ServerCommand {
    /// The caller-chosen correlation id carried by this command.
    pub fn id(&self) -> u64 {
        match self {
            ServerCommand::Plan(r) => r.id,
            ServerCommand::Delta(r) => r.id,
            ServerCommand::Stats { id }
            | ServerCommand::Cancel { id, .. }
            | ServerCommand::Hello { id, .. }
            | ServerCommand::Batch { id, .. }
            | ServerCommand::Subscribe { id, .. }
            | ServerCommand::Unsubscribe { id }
            | ServerCommand::Metrics { id }
            | ServerCommand::Trace { id, .. }
            | ServerCommand::Resync { id }
            | ServerCommand::Snapshot { id, .. }
            | ServerCommand::Load { id, .. }
            | ServerCommand::FetchSnapshot { id } => *id,
        }
    }
}

/// The full cached-plan payload an adopt-subscribed replica needs to mirror
/// one plan-cache entry: enough to reconstruct the primary's `CachedPlan`
/// byte-for-byte (the entry's cache key and cluster fingerprint are
/// recomputed from `request` on adoption, so a forged or corrupted payload
/// can mismatch and be dropped, never poison the replica under a wrong key).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanPayload {
    /// The originating plan request (carries model, cluster, constraints).
    pub request: PlanRequest,
    /// The cached response, byte-identical to what the primary serves.
    pub response: PlanResponse,
    /// The inference-device precision DAG kept for warm re-planning.
    pub inference_pdag: Option<PrecisionDag>,
}

/// A server-side event, streamed to [`ServerCommand::Subscribe`]d
/// connections as [`ServerReply::Event`] lines.
///
/// Events let a client *watch* the elasticity machinery instead of polling
/// `Stats`: a delta wave first announces what it evicted
/// ([`CacheInvalidated`](Self::CacheInvalidated)), then each entry's warm
/// re-plan completion ([`Replanned`](Self::Replanned)), then the per-delta
/// outcome ([`DeltaApplied`](Self::DeltaApplied)) — in that order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerEvent {
    /// A delta wave evicted cached plans; warm re-planning is starting.
    CacheInvalidated {
        /// Cache keys evicted by the wave (deterministic order).
        keys: Vec<String>,
        /// Trace id of the delta leading the wave (0 on untraced paths;
        /// absent in pre-observability events, deserializing to 0).
        #[serde(default)]
        trace_id: u64,
    },
    /// One evicted entry finished its warm re-plan.
    Replanned {
        /// The re-planned entry's cache key under the new cluster shape.
        key: String,
        /// How the plan was produced (warm re-plan, or a cache hit when two
        /// entries converged on one shape).
        outcome: PlanOutcome,
        /// Predicted iteration latency of the new plan (microseconds).
        predicted_iteration_us: f64,
        /// Trace id of the delta whose wave caused this re-plan (0 on
        /// untraced paths; absent in pre-observability events, deserializing
        /// to 0).
        #[serde(default)]
        trace_id: u64,
        /// Full cached-plan payload, present only on lines sent to
        /// `Subscribe { adopt: true }` connections (`null` for plain
        /// subscribers and absent in pre-replication events).
        #[serde(default)]
        adopt: Option<PlanPayload>,
    },
    /// A delta request completed; its submitter has received the
    /// [`DeltaResponse`].
    DeltaApplied {
        /// The delta request's id.
        id: u64,
        /// Fingerprint (hex) of the shape this delta's step applied to.
        old_cluster_fingerprint: String,
        /// Fingerprint (hex) of the shape after this delta's step.
        new_cluster_fingerprint: String,
        /// Cache entries the delta's wave group invalidated.
        invalidated: usize,
        /// Warm re-plans carried by this delta's response.
        replanned: usize,
        /// The delta's trace id (0 on untraced paths; absent in
        /// pre-observability events, deserializing to 0).
        #[serde(default)]
        trace_id: u64,
    },
    /// A cold or warm plan completed (v1, additive): fire-and-forget clients
    /// can watch for their key instead of holding a waiter open, and
    /// adopt-subscribed replicas mirror the entry from the payload.
    PlanReady {
        /// The completed plan's cache key.
        key: String,
        /// How the plan was produced ([`PlanOutcome::CacheHit`] requests do
        /// not emit this event — nothing new became ready).
        outcome: PlanOutcome,
        /// Predicted iteration latency of the plan (microseconds).
        predicted_iteration_us: f64,
        /// Trace id of the request that produced the plan (0 on untraced
        /// paths).
        #[serde(default)]
        trace_id: u64,
        /// Full cached-plan payload, present only on lines sent to
        /// `Subscribe { adopt: true }` connections (`null` for plain
        /// subscribers).
        #[serde(default)]
        adopt: Option<PlanPayload>,
    },
}

impl ServerEvent {
    /// The trace id stamped on this event (0 means the event was emitted by
    /// an untraced path).
    pub fn trace_id(&self) -> u64 {
        match self {
            ServerEvent::CacheInvalidated { trace_id, .. }
            | ServerEvent::Replanned { trace_id, .. }
            | ServerEvent::DeltaApplied { trace_id, .. }
            | ServerEvent::PlanReady { trace_id, .. } => *trace_id,
        }
    }

    /// This event with any adoption payload removed — the form rendered to
    /// plain (non-adopt) subscribers, and the cheap thing to keep when only
    /// the notification matters.
    pub fn without_adopt(&self) -> ServerEvent {
        let mut event = self.clone();
        match &mut event {
            ServerEvent::Replanned { adopt, .. } | ServerEvent::PlanReady { adopt, .. } => {
                *adopt = None;
            }
            ServerEvent::CacheInvalidated { .. } | ServerEvent::DeltaApplied { .. } => {}
        }
        event
    }
}

/// One output line of the serving protocol.
///
/// The first five variants are protocol v0 and serialize exactly as they
/// always have; the remaining variants are v1-only (a v0 command is never
/// answered with one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerReply {
    /// A plan response.
    Plan(PlanResponse),
    /// A delta outcome.
    Delta(DeltaResponse),
    /// Cache, scheduler and elasticity counters.
    Stats {
        /// Echo of the command id.
        id: u64,
        /// Cache counters at read time.
        stats: CacheStats,
        /// Scheduler counters (queue depths, per-class throughput, sheds,
        /// deadline accounting), global across every connection of the
        /// server. `None` from the schedulerless one-shot path.
        sched: Option<SchedStats>,
        /// Elasticity counters (delta waves, coalesced events, batched
        /// re-plans).
        deltas: DeltaStats,
        /// Per-subscriber event accounting (slow-consumer drops). Empty from
        /// the one-shot path and when no connection is subscribed; absent in
        /// pre-observability replies (deserializes to empty).
        #[serde(default)]
        subscribers: Vec<SubscriberStats>,
    },
    /// Outcome of a `Cancel` command.
    Cancelled {
        /// Echo of the command id.
        id: u64,
        /// The plan request id the cancel targeted.
        plan_id: u64,
        /// `true` if the plan was still queued (on this connection) and has
        /// been removed.
        cancelled: bool,
    },
    /// The command on this line could not be served (protocol v0 form: a
    /// bare message). v1 commands receive [`ServerReply::Fault`] instead.
    Error {
        /// Echo of the command id when it could be parsed.
        id: Option<u64>,
        /// Human-readable reason.
        message: String,
    },
    /// Response to [`ServerCommand::Hello`]: the server's supported protocol
    /// range.
    Hello {
        /// Echo of the command id.
        id: u64,
        /// Lowest protocol version the server accepts
        /// ([`MIN_PROTOCOL_VERSION`]; 0 means legacy un-enveloped lines).
        min_v: u32,
        /// Highest protocol version the server accepts
        /// ([`MAX_PROTOCOL_VERSION`]).
        max_v: u32,
        /// Server software identifier (name/version).
        server: String,
    },
    /// This connection is now subscribed to the event stream.
    Subscribed {
        /// Echo of the command id.
        id: u64,
    },
    /// This connection's event stream has ended.
    Unsubscribed {
        /// Echo of the command id.
        id: u64,
    },
    /// One server event (only sent to subscribed connections).
    Event {
        /// Server-wide monotone event sequence number (gaps mean events
        /// fired before this connection subscribed — or were dropped on a
        /// slow consumer; see [`ServerCommand::Resync`]).
        seq: u64,
        /// The event.
        event: ServerEvent,
    },
    /// Response to [`ServerCommand::Metrics`]: the full registry snapshot.
    Metrics {
        /// Echo of the command id.
        id: u64,
        /// Counters, gauges and histograms across every server layer.
        metrics: MetricsSnapshot,
    },
    /// Response to [`ServerCommand::Trace`]: the retained spans for one
    /// trace id, oldest first.
    Trace {
        /// Echo of the command id.
        id: u64,
        /// Echo of the queried trace id.
        trace_id: u64,
        /// The spans still held by the server's trace ring (empty when the
        /// id is unknown or its spans have been evicted).
        spans: Vec<TraceSpan>,
    },
    /// Response to [`ServerCommand::Resync`]: the connection's new event
    /// baseline plus the cache's current residents.
    Resynced {
        /// Echo of the command id.
        id: u64,
        /// The server's event sequence number at resync time: the next
        /// event this connection receives will carry a `seq` no less than
        /// this — the client's new gap-detection baseline.
        seq: u64,
        /// Cache keys currently resident (deterministic order), the state a
        /// consumer that lost invalidation events should rebuild from.
        keys: Vec<String>,
        /// Events dropped on this connection's subscription so far (slow
        /// consumer backlog overflow).
        dropped: u64,
    },
    /// Response to [`ServerCommand::Snapshot`]: what was persisted.
    Snapshotted {
        /// Echo of the command id.
        id: u64,
        /// The file the snapshot was written to.
        path: String,
        /// Records written (plan entries + memo entries).
        entries: u64,
        /// Total snapshot size in bytes.
        bytes: u64,
    },
    /// Response to [`ServerCommand::Load`]: what a verified snapshot merged.
    Loaded {
        /// Echo of the command id.
        id: u64,
        /// The file the snapshot was read from.
        path: String,
        /// Plan entries adopted into the cache.
        plans: u64,
        /// Initial-setting memo entries adopted.
        memos: u64,
        /// Records skipped (unknown kind, newer record version, or a key
        /// that does not match its own request — drift, never an error).
        skipped: u64,
        /// Total snapshot size in bytes.
        bytes: u64,
    },
    /// Response to [`ServerCommand::FetchSnapshot`]: the plan store itself.
    SnapshotData {
        /// Echo of the command id.
        id: u64,
        /// Records carried (plan entries + memo entries).
        entries: u64,
        /// Length of `data` in bytes.
        bytes: u64,
        /// A complete snapshot in the qsync-store file format (header line +
        /// checksummed payload), verifiable and loadable exactly like a file.
        data: String,
    },
    /// The command could not be served (protocol v1 form: structured error).
    Fault(ApiError),
}

impl ServerReply {
    /// The correlation id this reply answers, if any (`Event` lines and
    /// id-less faults have none).
    pub fn correlation_id(&self) -> Option<u64> {
        match self {
            ServerReply::Plan(p) => Some(p.id),
            ServerReply::Delta(d) => Some(d.id),
            ServerReply::Stats { id, .. }
            | ServerReply::Cancelled { id, .. }
            | ServerReply::Hello { id, .. }
            | ServerReply::Subscribed { id }
            | ServerReply::Unsubscribed { id }
            | ServerReply::Metrics { id, .. }
            | ServerReply::Trace { id, .. }
            | ServerReply::Resynced { id, .. }
            | ServerReply::Snapshotted { id, .. }
            | ServerReply::Loaded { id, .. }
            | ServerReply::SnapshotData { id, .. } => Some(*id),
            ServerReply::Error { id, .. } => *id,
            ServerReply::Fault(e) => e.id,
            ServerReply::Event { .. } => None,
        }
    }

    /// The structured error carried by this reply, if it is one. A legacy
    /// `Error` maps to [`ErrorCode::Internal`] (v0 carried no code).
    pub fn as_error(&self) -> Option<ApiError> {
        match self {
            ServerReply::Fault(e) => Some(e.clone()),
            ServerReply::Error { id, message } => Some(ApiError {
                id: *id,
                code: ErrorCode::Internal,
                message: message.clone(),
                field: None,
            }),
            _ => None,
        }
    }
}

/// The v1 request envelope: explicit protocol version, optional envelope-level
/// correlation id (echoed on envelope-level faults), and the command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version of this line (currently always [`PROTOCOL_VERSION`]).
    pub v: u32,
    /// Optional envelope-level correlation id. Commands carry their own ids;
    /// this one is echoed when the envelope itself is rejected (bad version,
    /// unparseable `cmd`).
    pub id: Option<u64>,
    /// The command.
    pub cmd: ServerCommand,
}

impl RequestEnvelope {
    /// Wrap a command in a current-version envelope.
    pub fn v1(cmd: ServerCommand) -> Self {
        RequestEnvelope { v: PROTOCOL_VERSION, id: Some(cmd.id()), cmd }
    }
}

/// The v1 reply envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyEnvelope {
    /// Protocol version of this line.
    pub v: u32,
    /// The reply.
    pub reply: ServerReply,
}

/// Which line form a command arrived in (and so which form its replies take).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireProto {
    /// Legacy bare-object lines (protocol v0).
    #[default]
    V0,
    /// Enveloped lines (protocol v1).
    V1,
}

/// A successfully parsed input line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLine {
    /// The form the line arrived in.
    pub wire: WireProto,
    /// The envelope-level id (v1 only).
    pub envelope_id: Option<u64>,
    /// The command.
    pub cmd: ServerCommand,
}

/// A parse failure, tagged with the form the *reply* must take: failures of
/// legacy lines render as v0 `Error` replies with the exact pre-envelope
/// message, failures of enveloped lines as v1 `Fault`s.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The form the error reply must take.
    pub wire: WireProto,
    /// The structured error.
    pub error: ApiError,
}

/// Parse one input line, auto-detecting the protocol form.
///
/// This is the **compatibility shim**: a JSON object carrying a `"v"` key is
/// treated as a [`RequestEnvelope`]; every other line takes the legacy path
/// and parses as a bare [`ServerCommand`] — with parse failures reported in
/// the exact `unparseable command: …` form the pre-envelope server used, so
/// v0 clients observe byte-identical behavior.
pub fn parse_line(line: &str) -> Result<ParsedLine, WireError> {
    let legacy_parse_error = |e: &dyn std::fmt::Display| WireError {
        wire: WireProto::V0,
        error: ApiError::new(ErrorCode::Parse, format!("unparseable command: {e}")),
    };
    // One tokenizer pass; `from_str::<T>` is parse-to-Value + convert, so
    // converting the parsed Value below reports the same messages it would.
    let value = match serde_json::from_str::<serde::Value>(line) {
        Ok(value) => value,
        Err(e) => return Err(legacy_parse_error(&e)),
    };
    if value.get("v").is_none() {
        return match serde_json::from_value::<ServerCommand>(&value) {
            Ok(cmd) => Ok(ParsedLine { wire: WireProto::V0, envelope_id: None, cmd }),
            Err(e) => Err(legacy_parse_error(&e)),
        };
    }
    // Envelope path: all failures from here render as v1 faults.
    let envelope_id = value.get("id").and_then(serde::Value::as_u64);
    let fault = |error: ApiError| WireError {
        wire: WireProto::V1,
        error: ApiError { id: envelope_id, ..error },
    };
    match value.get("v").and_then(serde::Value::as_u64) {
        Some(v) if (1..=MAX_PROTOCOL_VERSION as u64).contains(&v) => {}
        Some(v) => {
            return Err(fault(
                ApiError::new(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "unsupported protocol version {v}: this server speaks \
                         {MIN_PROTOCOL_VERSION}..={MAX_PROTOCOL_VERSION} \
                         (v0 is the legacy un-enveloped line form)"
                    ),
                )
                .with_field("v"),
            ))
        }
        None => {
            return Err(fault(
                ApiError::new(
                    ErrorCode::Parse,
                    "envelope field \"v\" must be an unsigned integer protocol version",
                )
                .with_field("v"),
            ))
        }
    }
    match serde_json::from_value::<RequestEnvelope>(&value) {
        Ok(envelope) => Ok(ParsedLine {
            wire: WireProto::V1,
            envelope_id: envelope.id,
            cmd: envelope.cmd,
        }),
        Err(e) => Err(fault(
            ApiError::new(ErrorCode::Parse, format!("unparseable envelope: {e}")).with_field("cmd"),
        )),
    }
}

/// Serialize one reply line in the given wire form (no trailing newline).
///
/// Under [`WireProto::V0`] a [`ServerReply::Fault`] is downgraded to the
/// legacy `Error { id, message }` shape — the message string is the v0 one,
/// so legacy clients see byte-identical error lines; every other reply
/// serializes as the bare object. Under [`WireProto::V1`] the reply is
/// wrapped in a [`ReplyEnvelope`].
pub fn render_reply(wire: WireProto, reply: &ServerReply) -> String {
    match wire {
        WireProto::V0 => match reply {
            ServerReply::Fault(e) => serde_json::to_string(&ServerReply::Error {
                id: e.id,
                message: e.message.clone(),
            }),
            other => serde_json::to_string(other),
        }
        .expect("reply serialization cannot fail"),
        WireProto::V1 => {
            // Cheap structural wrap — splice the serialized body instead of
            // cloning the (potentially plan-sized) reply into a
            // [`ReplyEnvelope`]; a unit test pins byte-equality of the two.
            let body =
                serde_json::to_string(reply).expect("reply serialization cannot fail");
            format!("{{\"v\":{PROTOCOL_VERSION},\"reply\":{body}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use qsync_cluster::topology::ClusterSpec;

    fn plan_cmd(id: u64) -> ServerCommand {
        ServerCommand::Plan(PlanRequest::new(
            id,
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ClusterSpec::hybrid_small(),
        ))
    }

    #[test]
    fn legacy_lines_parse_as_v0() {
        let line = serde_json::to_string(&plan_cmd(3)).unwrap();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.wire, WireProto::V0);
        assert_eq!(parsed.envelope_id, None);
        assert_eq!(parsed.cmd.id(), 3);
    }

    #[test]
    fn enveloped_lines_parse_as_v1() {
        let line = serde_json::to_string(&RequestEnvelope::v1(plan_cmd(4))).unwrap();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.wire, WireProto::V1);
        assert_eq!(parsed.envelope_id, Some(4));
        assert_eq!(parsed.cmd, plan_cmd(4));
    }

    #[test]
    fn legacy_parse_failures_keep_the_v0_message_shape() {
        let err = parse_line("this is not json").unwrap_err();
        assert_eq!(err.wire, WireProto::V0);
        assert_eq!(err.error.code, ErrorCode::Parse);
        assert!(err.error.message.starts_with("unparseable command: "), "{}", err.error.message);
        // A valid JSON object that is not a command also takes the legacy path.
        let err = parse_line(r#"{"Nope":1}"#).unwrap_err();
        assert_eq!(err.wire, WireProto::V0);
        assert!(err.error.message.starts_with("unparseable command: "));
    }

    #[test]
    fn unsupported_versions_fault_with_the_envelope_id() {
        let err = parse_line(r#"{"v":99,"id":7,"cmd":{"Stats":{"id":7}}}"#).unwrap_err();
        assert_eq!(err.wire, WireProto::V1);
        assert_eq!(err.error.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.error.id, Some(7));
        assert_eq!(err.error.field.as_deref(), Some("v"));
        // v0 in an envelope is explicitly rejected: v0 is the *un-enveloped* form.
        let err = parse_line(r#"{"v":0,"cmd":{"Stats":{"id":1}}}"#).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::UnsupportedVersion);
    }

    #[test]
    fn bad_envelope_cmd_faults_as_v1() {
        let err = parse_line(r#"{"v":1,"id":9,"cmd":{"Nope":1}}"#).unwrap_err();
        assert_eq!(err.wire, WireProto::V1);
        assert_eq!(err.error.code, ErrorCode::Parse);
        assert_eq!(err.error.id, Some(9));
        let err = parse_line(r#"{"v":1,"id":9}"#).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::Parse, "missing cmd is a parse fault");
    }

    #[test]
    fn render_downgrades_faults_for_v0() {
        let fault = ServerReply::Fault(
            ApiError::new(ErrorCode::QueueFull, "interactive queue full (cap 4): request shed")
                .with_id(5),
        );
        let v0 = render_reply(WireProto::V0, &fault);
        assert_eq!(
            v0,
            r#"{"Error":{"id":5,"message":"interactive queue full (cap 4): request shed"}}"#
        );
        let v1 = render_reply(WireProto::V1, &fault);
        assert!(v1.starts_with(r#"{"v":1,"reply":{"Fault":"#), "{v1}");
        let back: ReplyEnvelope = serde_json::from_str(&v1).unwrap();
        assert_eq!(back.reply, fault);
    }

    #[test]
    fn spliced_v1_rendering_matches_the_envelope_struct_bytes() {
        for reply in [
            ServerReply::Subscribed { id: 1 },
            ServerReply::Cancelled { id: 2, plan_id: 3, cancelled: false },
            ServerReply::Error { id: None, message: "x\"y".into() },
            ServerReply::Fault(ApiError::new(ErrorCode::Internal, "boom").with_id(4)),
        ] {
            let spliced = render_reply(WireProto::V1, &reply);
            let structural =
                serde_json::to_string(&ReplyEnvelope { v: PROTOCOL_VERSION, reply: reply.clone() })
                    .unwrap();
            assert_eq!(spliced, structural);
        }
    }

    #[test]
    fn batch_and_subscribe_round_trip_enveloped() {
        let batch = ServerCommand::Batch {
            id: 40,
            cmds: vec![plan_cmd(41), ServerCommand::Stats { id: 42 }],
        };
        let line = serde_json::to_string(&RequestEnvelope::v1(batch.clone())).unwrap();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.cmd, batch);
        let sub = ServerCommand::Subscribe { id: 43, adopt: false };
        let line = serde_json::to_string(&RequestEnvelope::v1(sub.clone())).unwrap();
        assert_eq!(parse_line(&line).unwrap().cmd, sub);
    }

    #[test]
    fn pre_observability_reply_lines_still_parse() {
        // Golden lines captured from a pre-observability server (no
        // `subscribers` in Stats, no `trace_id` on events). A client built
        // from this crate must keep deserializing them: both sides still
        // negotiate protocol v1, so version negotiation cannot shield a
        // mixed-version deployment from a missing-field break.
        let stats_line = r#"{"Stats":{"id":1,"stats":{"hits":4,"misses":2,"invalidated":1,"evicted":0,"entries":3},"sched":null,"deltas":{"waves":1,"events":2,"batched_replans":3}}}"#;
        let reply: ServerReply = serde_json::from_str(stats_line).unwrap();
        match reply {
            ServerReply::Stats { id, stats, subscribers, .. } => {
                assert_eq!(id, 1);
                assert_eq!(stats.hits, 4);
                assert!(subscribers.is_empty(), "absent subscribers deserialize to empty");
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        let event_lines = [
            r#"{"Event":{"seq":5,"event":{"CacheInvalidated":{"keys":["k1","k2"]}}}}"#,
            r#"{"Event":{"seq":6,"event":{"Replanned":{"key":"k1","outcome":"WarmReplanned","predicted_iteration_us":12.5}}}}"#,
            r#"{"Event":{"seq":7,"event":{"DeltaApplied":{"id":9,"old_cluster_fingerprint":"aa","new_cluster_fingerprint":"bb","invalidated":2,"replanned":2}}}}"#,
        ];
        for line in event_lines {
            let reply: ServerReply = serde_json::from_str(line).unwrap();
            match reply {
                ServerReply::Event { event, .. } => {
                    assert_eq!(event.trace_id(), 0, "absent trace_id deserializes to 0: {line}");
                }
                other => panic!("expected Event, got {other:?}"),
            }
            // The v1-enveloped form of the same lines must parse too.
            let enveloped = format!(r#"{{"v":1,"reply":{}}}"#, line);
            let back: ReplyEnvelope = serde_json::from_str(&enveloped).unwrap();
            assert_eq!(back.v, 1);
        }
    }

    #[test]
    fn pre_replication_lines_still_parse() {
        // A pre-replication client's Subscribe (no `adopt` key) must
        // deserialize with adoption off.
        let cmd: ServerCommand = serde_json::from_str(r#"{"Subscribe":{"id":4}}"#).unwrap();
        assert_eq!(cmd, ServerCommand::Subscribe { id: 4, adopt: false });
        // A pre-replication server's Replanned event (no `adopt` key) must
        // deserialize with no payload.
        let line = r#"{"Event":{"seq":6,"event":{"Replanned":{"key":"k1","outcome":"WarmReplanned","predicted_iteration_us":12.5}}}}"#;
        let reply: ServerReply = serde_json::from_str(line).unwrap();
        let ServerReply::Event { event: ServerEvent::Replanned { adopt, .. }, .. } = reply else {
            panic!("expected Replanned event");
        };
        assert_eq!(adopt, None);
    }

    #[test]
    fn snapshot_commands_round_trip_enveloped() {
        for cmd in [
            ServerCommand::Snapshot { id: 50, path: Some("/tmp/x.qss".into()) },
            ServerCommand::Snapshot { id: 51, path: None },
            ServerCommand::Load { id: 52, path: None },
            ServerCommand::FetchSnapshot { id: 53 },
        ] {
            let line = serde_json::to_string(&RequestEnvelope::v1(cmd.clone())).unwrap();
            let parsed = parse_line(&line).unwrap();
            assert_eq!(parsed.cmd, cmd);
            assert_eq!(parsed.cmd.id(), cmd.id());
        }
    }

    #[test]
    fn without_adopt_strips_payloads_and_nothing_else() {
        let request = PlanRequest::new(
            1,
            ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
            ClusterSpec::hybrid_small(),
        );
        let ready = ServerEvent::PlanReady {
            key: "k".into(),
            outcome: PlanOutcome::ColdPlanned,
            predicted_iteration_us: 9.0,
            trace_id: 7,
            adopt: Some(PlanPayload {
                request: request.clone(),
                response: PlanResponse {
                    id: 1,
                    key: "k".into(),
                    outcome: PlanOutcome::ColdPlanned,
                    plan: qsync_core::plan::PrecisionPlan::oracle(
                        &request.model.build(),
                        &request.cluster,
                    ),
                    predicted_iteration_us: 9.0,
                    t_min_us: 9.0,
                    promotions_accepted: 0,
                    warm_demotions: 0,
                    elapsed_us: 1,
                    trace_id: Some(7),
                },
                inference_pdag: None,
            }),
        };
        let stripped = ready.without_adopt();
        let ServerEvent::PlanReady { adopt, key, trace_id, .. } = &stripped else {
            panic!("variant preserved");
        };
        assert!(adopt.is_none());
        assert_eq!((key.as_str(), *trace_id), ("k", 7));
        // Variants without payloads pass through untouched.
        let inval = ServerEvent::CacheInvalidated { keys: vec!["a".into()], trace_id: 3 };
        assert_eq!(inval.without_adopt(), inval);
    }

    #[test]
    fn correlation_ids_cover_every_reply() {
        assert_eq!(ServerReply::Subscribed { id: 8 }.correlation_id(), Some(8));
        assert_eq!(
            ServerReply::Event {
                seq: 1,
                event: ServerEvent::CacheInvalidated { keys: vec![], trace_id: 0 },
            }
            .correlation_id(),
            None
        );
        assert_eq!(
            ServerReply::Error { id: None, message: "x".into() }.correlation_id(),
            None
        );
        let api = ServerReply::Error { id: Some(3), message: "x".into() }.as_error().unwrap();
        assert_eq!((api.id, api.code), (Some(3), ErrorCode::Internal));
    }
}
