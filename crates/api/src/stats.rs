//! Observability counters carried by `Stats` replies.
//!
//! [`CacheStats`] lives here (rather than next to the cache implementation in
//! `qsync-serve`) because it is part of the wire contract: clients parse it
//! out of `Stats` replies. Scheduler counters
//! ([`SchedStats`](qsync_sched::SchedStats)) are re-exported from
//! `qsync-sched`, and elasticity counters are
//! [`DeltaStats`](crate::DeltaStats).

use serde::{Deserialize, Serialize};

/// Per-subscriber event-stream accounting, carried by `Stats` replies from
/// streaming connections (empty from the one-shot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubscriberStats {
    /// Server-side connection number of the subscriber.
    pub conn: u64,
    /// Events this subscriber lost to the slow-consumer cap since it
    /// subscribed (or since its last `Resync`). Dropped events appear to the
    /// client as gaps in the monotone event `seq`.
    pub dropped: u64,
}

/// Plan-cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that required planning.
    pub misses: u64,
    /// Entries evicted by elasticity invalidations.
    pub invalidated: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evicted: u64,
    /// Entries currently resident.
    pub entries: usize,
}
