//! Retry/backoff and bounded-event-buffer behavior against a scripted fake
//! server (a plain `TcpListener` speaking the wire protocol, so these tests
//! need no server crate).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qsync_api::{
    parse_line, render_reply, CacheStats, ClusterDelta, DeltaRequest, DeltaStats, ServerCommand,
    ServerEvent, ServerReply, WireProto, MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION,
};
use qsync_client::{Client, ClientError, EventItem, MuxClient, RetryPolicy};
use qsync_cluster::topology::ClusterSpec;

/// Spawn a listener whose connections are each handed to `handler` with
/// their 0-based accept index. Returns the address and the accept counter.
fn spawn_server(
    handler: impl Fn(usize, TcpStream) + Send + Sync + 'static,
) -> (SocketAddr, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let accepted = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepted);
    let handler = Arc::new(handler);
    std::thread::spawn(move || {
        for (index, stream) in listener.incoming().enumerate() {
            let Ok(stream) = stream else { break };
            counter.fetch_add(1, Ordering::SeqCst);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || handler(index, stream));
        }
    });
    (addr, accepted)
}

fn send(stream: &mut TcpStream, reply: &ServerReply) {
    let mut line = render_reply(WireProto::V1, reply);
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("fake server write");
}

/// Read and parse the next command line; `None` on EOF.
fn read_command(reader: &mut BufReader<TcpStream>) -> Option<ServerCommand> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    Some(parse_line(&line).expect("fake server parse").cmd)
}

/// Answer the `Hello` handshake; returns `None` if the connection closed
/// before (or instead of) the handshake.
fn answer_hello(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream) -> Option<()> {
    match read_command(reader)? {
        ServerCommand::Hello { id, .. } => {
            send(
                stream,
                &ServerReply::Hello {
                    id,
                    min_v: MIN_PROTOCOL_VERSION,
                    max_v: MAX_PROTOCOL_VERSION,
                    server: "fake".into(),
                },
            );
            Some(())
        }
        other => panic!("expected Hello first, got {other:?}"),
    }
}

fn empty_stats(id: u64) -> ServerReply {
    ServerReply::Stats {
        id,
        stats: CacheStats::default(),
        sched: None,
        deltas: DeltaStats::default(),
        subscribers: vec![],
    }
}

/// A policy sized for tests: sleeps stay in the single-digit milliseconds.
fn fast_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter: 0.2,
        request_timeout: Duration::from_secs(5),
    }
}

#[test]
fn idempotent_request_survives_a_dropped_connection() {
    // Connection 0 dies on its first post-handshake command; later
    // connections serve normally. One retry must hide the failure.
    let (addr, accepted) = spawn_server(|index, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        while let Some(command) = read_command(&mut reader) {
            if index == 0 {
                return; // drop without replying
            }
            match command {
                ServerCommand::Stats { id } => send(&mut stream, &empty_stats(id)),
                other => panic!("unexpected command {other:?}"),
            }
        }
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(3)).expect("connect");
    let snapshot = client.stats().expect("stats should succeed after one retry");
    assert_eq!(snapshot.cache, CacheStats::default());
    assert_eq!(accepted.load(Ordering::SeqCst), 2, "exactly one reconnect");
}

#[test]
fn exhausted_retries_surface_attempts_and_the_last_error() {
    // Every connection dies on its first post-handshake command.
    let (addr, accepted) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        let _ = read_command(&mut reader); // then drop
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(3)).expect("connect");
    match client.stats() {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(
                matches!(*last, ClientError::Io(_) | ClientError::Closed),
                "last error should be the transport failure, got {last:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 3, "three attempts, three connections");
}

#[test]
fn delta_is_never_retried() {
    let (addr, accepted) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        let _ = read_command(&mut reader); // then drop
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(5)).expect("connect");
    let cluster = ClusterSpec::hybrid_small();
    let rank = cluster.inference_ranks()[0];
    let request = DeltaRequest::new(
        0,
        cluster,
        ClusterDelta::Degraded { rank, memory_fraction: 0.9, compute_fraction: 0.9 },
    );
    match client.delta(request) {
        Err(ClientError::Io(_) | ClientError::Closed) => {}
        other => panic!("a delta must fail fast with the transport error, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 1, "no reconnect for a non-idempotent command");
}

#[test]
fn non_transport_errors_are_not_retried() {
    // The server answers the idempotent command with a structured fault:
    // retrying would not change the answer, so no reconnect happens.
    let (addr, accepted) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        while let Some(command) = read_command(&mut reader) {
            let error = qsync_api::ApiError::new(qsync_api::ErrorCode::Internal, "nope")
                .with_id(command.id());
            send(&mut stream, &ServerReply::Fault(error));
        }
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(5)).expect("connect");
    match client.stats() {
        Err(ClientError::Api(e)) => assert_eq!(e.message, "nope"),
        other => panic!("expected the Api error unretried, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 1);
}

#[test]
fn rate_limited_is_retried_on_the_same_connection() {
    // The server sheds the first two Stats attempts with a structured
    // `rate_limited` fault, then serves the third. The client must back off
    // and resend on the SAME socket — a reconnect would hand it a fresh
    // per-connection token bucket, defeating the server's limiter.
    let sheds = Arc::new(AtomicUsize::new(0));
    let shed_state = Arc::clone(&sheds);
    let (addr, accepted) = spawn_server(move |_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        while let Some(command) = read_command(&mut reader) {
            match command {
                ServerCommand::Stats { id } => {
                    if shed_state.fetch_add(1, Ordering::SeqCst) < 2 {
                        let error = qsync_api::ApiError::new(
                            qsync_api::ErrorCode::RateLimited,
                            "connection rate limit exceeded; retry after backoff",
                        )
                        .with_id(id);
                        send(&mut stream, &ServerReply::Fault(error));
                    } else {
                        send(&mut stream, &empty_stats(id));
                    }
                }
                other => panic!("unexpected command {other:?}"),
            }
        }
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(3)).expect("connect");
    let snapshot = client.stats().expect("stats should succeed after backing off twice");
    assert_eq!(snapshot.cache, CacheStats::default());
    assert_eq!(sheds.load(Ordering::SeqCst), 3, "two sheds then one served attempt");
    assert_eq!(accepted.load(Ordering::SeqCst), 1, "rate-limit retries must not reconnect");
}

#[test]
fn persistent_rate_limiting_exhausts_retries_without_reconnecting() {
    // Every attempt is shed. The retry budget must bound the attempts, the
    // surfaced error must wrap the server's structured shed, and the whole
    // exchange stays on one connection.
    let (addr, accepted) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        while let Some(command) = read_command(&mut reader) {
            let error = qsync_api::ApiError::new(qsync_api::ErrorCode::RateLimited, "slow down")
                .with_id(command.id());
            send(&mut stream, &ServerReply::Fault(error));
        }
    });

    let mut client = Client::connect_with_retry(addr, fast_policy(3)).expect("connect");
    match client.stats() {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            match *last {
                ClientError::Api(e) => assert_eq!(e.code, qsync_api::ErrorCode::RateLimited),
                other => panic!("last error should be the rate-limit fault, got {other:?}"),
            }
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 1, "no reconnects while rate limited");
}

#[test]
fn event_stash_overflow_drops_the_backlog_and_surfaces_a_gap() {
    // Script: confirm the subscription, deliver seq 0 (establishes the
    // stream's baseline), then on the next Stats command flood seqs 1..=10
    // *before* the Stats reply — the reply doubles as a barrier proving the
    // reader thread has buffered the whole flood.
    let (addr, _) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        while let Some(command) = read_command(&mut reader) {
            match command {
                ServerCommand::Subscribe { id, .. } => {
                    send(&mut stream, &ServerReply::Subscribed { id });
                    send(
                        &mut stream,
                        &ServerReply::Event {
                            seq: 0,
                            event: ServerEvent::CacheInvalidated { keys: vec![], trace_id: 0 },
                        },
                    );
                }
                ServerCommand::Stats { id } => {
                    for seq in 1..=10 {
                        send(
                            &mut stream,
                            &ServerReply::Event {
                                seq,
                                event: ServerEvent::CacheInvalidated { keys: vec![], trace_id: 0 },
                            },
                        );
                    }
                    send(&mut stream, &empty_stats(id));
                }
                other => panic!("unexpected command {other:?}"),
            }
        }
    });

    let client = MuxClient::connect(addr).expect("connect");
    let stream = client.subscribe_with_capacity(4).expect("subscribe");
    assert_eq!(
        stream.next_timeout(Duration::from_secs(5)),
        Some(EventItem::Event {
            seq: 0,
            event: ServerEvent::CacheInvalidated { keys: vec![], trace_id: 0 },
        }),
        "baseline event"
    );
    client.stats().expect("stats barrier");
    // Cap 4 against a 10-event flood: the buffer shed twice; the newest
    // window [9, 10] survives and the hole surfaces as one gap.
    let gap = stream.next_timeout(Duration::from_secs(5)).expect("gap item");
    assert_eq!(gap, EventItem::Gap { expected: 1, got: 9 });
    assert_eq!(gap.missed(), 8);
    for seq in [9u64, 10] {
        assert_eq!(
            stream.next_timeout(Duration::from_secs(5)),
            Some(EventItem::Event {
                seq,
                event: ServerEvent::CacheInvalidated { keys: vec![], trace_id: 0 },
            })
        );
    }
}

#[test]
fn event_stream_ends_when_the_connection_closes() {
    let (addr, _) = spawn_server(|_, stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if answer_hello(&mut reader, &mut stream).is_none() {
            return;
        }
        if let Some(ServerCommand::Subscribe { id, .. }) = read_command(&mut reader) {
            send(&mut stream, &ServerReply::Subscribed { id });
        }
        // then drop: the stream must end rather than block forever
    });

    let client = MuxClient::connect(addr).expect("connect");
    let stream = client.subscribe().expect("subscribe");
    assert_eq!(stream.next_timeout(Duration::from_secs(5)), None);
}
