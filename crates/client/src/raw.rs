//! The raw JSONL client: a blocking socket speaking protocol lines, with
//! receive timeouts.
//!
//! This is the lowest layer — it frames lines, serializes commands (bare v0
//! or enveloped v1) and parses replies in either form, but imposes no
//! request/reply discipline. The typed [`Client`](crate::Client) and the
//! multiplexing [`MuxClient`](crate::MuxClient) are built on it; tests (e.g.
//! protocol fuzzers) use it directly to send arbitrary bytes.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use qsync_api::{ReplyEnvelope, RequestEnvelope, ServerCommand, ServerReply};

use crate::error::{ClientError, Result};

/// Default receive/send timeout: long enough for a cold plan on a loaded CI
/// host, short enough that a wedged server fails a test instead of hanging it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

/// Parse one reply line, auto-detecting the envelope form: an object with a
/// `"v"` key is a [`ReplyEnvelope`], anything else a bare [`ServerReply`].
pub fn parse_reply_line(line: &str) -> Result<ServerReply> {
    let value: serde::Value = serde_json::from_str(line)
        .map_err(|e| ClientError::Protocol(format!("unparseable reply line: {e}")))?;
    if value.get("v").is_some() {
        let envelope: ReplyEnvelope = serde_json::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable reply envelope: {e}")))?;
        Ok(envelope.reply)
    } else {
        serde_json::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))
    }
}

/// A blocking JSONL protocol connection with receive timeouts.
pub struct RawClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    /// Connect to `addr` with the [`DEFAULT_TIMEOUT`].
    pub fn connect(addr: SocketAddr) -> Result<RawClient> {
        Self::connect_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connect to `addr` with an explicit socket read/write timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<RawClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_read_timeout(Some(timeout))?;
        writer.set_write_timeout(Some(timeout))?;
        // Request lines must leave as one segment: Nagle + the peer's
        // delayed ACK would otherwise add ~40 ms to every round-trip.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(RawClient { writer, reader })
    }

    /// Send one raw line (a `\n` is appended), as a single write.
    pub fn send_line(&mut self, line: &str) -> Result<()> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        Ok(())
    }

    /// Send raw bytes as-is (fuzzing: no framing added).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Send one command as a legacy (v0, un-enveloped) line.
    pub fn send_legacy(&mut self, command: &ServerCommand) -> Result<()> {
        self.send_line(&serde_json::to_string(command).expect("command serializes"))
    }

    /// Send one command wrapped in a current-version envelope.
    pub fn send_enveloped(&mut self, command: &ServerCommand) -> Result<()> {
        let envelope = RequestEnvelope::v1(command.clone());
        self.send_line(&serde_json::to_string(&envelope).expect("envelope serializes"))
    }

    /// Receive one reply line (bare or enveloped). Errors on timeout or EOF.
    pub fn recv(&mut self) -> Result<ServerReply> {
        match self.try_recv()? {
            Some(reply) => Ok(reply),
            None => Err(ClientError::Closed),
        }
    }

    /// Receive one reply line; `Ok(None)` on clean EOF, `Err` on timeout.
    pub fn try_recv(&mut self) -> Result<Option<ServerReply>> {
        match self.recv_raw_line()? {
            None => Ok(None),
            Some(line) => parse_reply_line(&line).map(Some),
        }
    }

    /// Receive one raw reply line (no trailing newline), unparsed — for
    /// byte-level protocol assertions. `Ok(None)` on clean EOF.
    pub fn recv_raw_line(&mut self) -> Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => {
                if line.ends_with('\n') {
                    line.pop();
                }
                Ok(Some(line))
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Close the write side, signalling EOF to the server.
    pub fn finish_writes(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}
