//! Client-side retry policy: bounded attempts, exponential backoff with
//! deterministic jitter, and an explicit idempotency contract.
//!
//! # What is safe to retry
//!
//! Retrying is only sound for commands whose effect is the same whether the
//! server executed them once or twice — the failure mode of a retry is
//! always "the first attempt actually succeeded but its reply was lost":
//!
//! * **Retried** — `Plan` (keyed by the request's cache key: a duplicate
//!   either hits the cache or recomputes the identical bytes), `Stats`,
//!   `Metrics`, `Trace`, `Resync`, and the `Hello` handshake. All read or
//!   idempotently compute. These are resent after a `rate_limited` shed
//!   too — the one server-spoken error that *invites* a retry: the server
//!   rejected the command before any state changed, and the backoff gives
//!   its token bucket time to refill (the retry reuses the same
//!   connection; a reconnect would start a fresh per-connection bucket
//!   and cheat the limiter).
//! * **Never retried** — `Delta` (each application *moves* the cluster
//!   shape; replaying a lost-reply delta would apply it twice), `Cancel`
//!   (whether the target was still queued is not stable across attempts),
//!   and `Subscribe`/`Unsubscribe` (subscriptions are connection state and
//!   die with the connection a retry would abandon).
//!
//! The typed [`Client`](crate::Client) enforces this split; a non-idempotent
//! call that hits a transport failure surfaces the error unretried.

use std::time::Duration;

/// Bounded-retry configuration for the blocking [`Client`](crate::Client).
///
/// A request is retried only for an idempotent command (see the module
/// docs), on transport failures ([`ClientError::Io`], [`ClientError::Closed`])
/// or a `rate_limited` shed; other server-level errors ([`ClientError::Api`])
/// and protocol violations are never retried. A transport-failure retry
/// reconnects (the old socket is assumed broken) and re-runs the `Hello`
/// handshake before resending; a rate-limited retry backs off and resends on
/// the *same* connection (a reconnect would hand it a fresh per-connection
/// token bucket). When every attempt fails the caller receives
/// [`ClientError::RetriesExhausted`] wrapping the last failure.
///
/// [`ClientError::Io`]: crate::ClientError::Io
/// [`ClientError::Closed`]: crate::ClientError::Closed
/// [`ClientError::Api`]: crate::ClientError::Api
/// [`ClientError::RetriesExhausted`]: crate::ClientError::RetriesExhausted
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, the initial one included (so `1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor drawn
    /// deterministically from `[1 - jitter, 1 + jitter)`, de-synchronizing
    /// retry storms across clients without making tests flaky.
    pub jitter: f64,
    /// Per-attempt socket read/write timeout (the "request timeout"): a
    /// reply slower than this fails the attempt with a timed-out
    /// [`ClientError::Io`] — and, for an idempotent command, triggers the
    /// next attempt.
    ///
    /// [`ClientError::Io`]: crate::ClientError::Io
    pub request_timeout: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 50 ms doubling backoff capped at 2 s, 20% jitter,
    /// and the crate's [`DEFAULT_TIMEOUT`](crate::DEFAULT_TIMEOUT) per
    /// attempt.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.2,
            request_timeout: crate::raw::DEFAULT_TIMEOUT,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based): exponential in the
    /// attempt, capped, and jittered deterministically by `salt` (the
    /// request id) — same inputs, same delay, so retry behavior is exactly
    /// reproducible.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base_ms = self.base_backoff.as_millis() as u64;
        let capped_ms = base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff.as_millis() as u64);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || capped_ms == 0 {
            return Duration::from_millis(capped_ms);
        }
        let r = splitmix64(salt.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(attempt)));
        // 53 high bits -> uniform in [0, 1).
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - jitter + 2.0 * jitter * unit;
        Duration::from_millis((capped_ms as f64 * factor) as u64)
    }
}

/// SplitMix64: a tiny, well-mixed hash — enough to decorrelate backoff
/// sleeps without pulling in an RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(policy.backoff(0, 1), Duration::from_millis(50));
        assert_eq!(policy.backoff(1, 1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2, 1), Duration::from_millis(200));
        assert_eq!(policy.backoff(10, 1), Duration::from_secs(2), "capped at max_backoff");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 0..4 {
            for salt in [1u64, 7, 999] {
                let a = policy.backoff(attempt, salt);
                let b = policy.backoff(attempt, salt);
                assert_eq!(a, b, "same inputs must give the same delay");
                let nominal = (policy.base_backoff * 2u32.pow(attempt))
                    .min(policy.max_backoff)
                    .as_millis() as f64;
                let ms = a.as_millis() as f64;
                assert!(
                    ms >= nominal * 0.8 - 1.0 && ms <= nominal * 1.2 + 1.0,
                    "attempt {attempt} salt {salt}: {ms} outside jitter band of {nominal}"
                );
            }
        }
    }
}
