//! # qsync-client — typed clients for the plan-serving protocol
//!
//! Three layers over one TCP socket, all speaking the versioned protocol of
//! [`qsync_api`]:
//!
//! * [`RawClient`] — blocking JSONL framing with timeouts; sends legacy (v0)
//!   or enveloped (v1) lines, parses replies in either form. The substrate
//!   for tests and fuzzers.
//! * [`Client`] — blocking typed calls ([`Client::plan`], [`Client::delta`],
//!   [`Client::stats`], [`Client::subscribe`]/[`Client::next_event`]), one
//!   request in flight at a time, `Hello` version handshake on connect,
//!   structured server errors as [`ClientError::Api`].
//! * [`MuxClient`] — the multiplexing handle: clone it across threads, keep
//!   many requests in flight over one socket, and a background reader routes
//!   every reply to its waiter by the echoed correlation id
//!   ([`Pending`]); `Subscribe` events flow into an [`EventStream`] whose
//!   buffer is bounded — overflow drops the stash and surfaces as an
//!   [`EventItem::Gap`], mirroring the server's `Resync` semantics.
//!
//! The blocking [`Client`] optionally carries a [`RetryPolicy`]: bounded
//! reconnect-and-resend with exponential backoff and deterministic jitter,
//! applied to idempotent commands only (see the [`retry`] module for the
//! idempotency contract).
//!
//! ```no_run
//! use qsync_api::{ModelSpec, PlanRequest};
//! use qsync_client::Client;
//! use qsync_cluster::topology::ClusterSpec;
//!
//! # fn main() -> qsync_client::Result<()> {
//! let mut client = Client::connect("127.0.0.1:7878".parse().unwrap())?;
//! let response = client.plan(PlanRequest::new(
//!     0, // replaced with a connection-unique id
//!     ModelSpec::Vgg16Bn { batch: 2, image: 32 },
//!     ClusterSpec::cluster_a(2, 2),
//! ))?;
//! println!("planned: {} ({:?})", response.key, response.outcome);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod client;
mod error;
mod mux;
mod raw;
pub mod retry;

pub use client::{Client, LoadInfo, ResyncSnapshot, SnapshotBlob, SnapshotInfo, StatsSnapshot};
pub use error::{ClientError, Result};
pub use mux::{EventItem, EventStream, MuxClient, Pending, DEFAULT_EVENT_BUFFER};
pub use raw::{parse_reply_line, RawClient, DEFAULT_TIMEOUT};
pub use retry::RetryPolicy;

pub use qsync_api as api;
