//! The blocking typed client: one request in flight at a time, enveloped v1
//! lines, structured errors surfaced as [`ClientError::Api`].

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::Duration;

use qsync_api::{
    CacheStats, DeltaRequest, DeltaResponse, DeltaStats, MetricsSnapshot, PlanRequest,
    PlanResponse, SchedStats, ServerCommand, ServerEvent, ServerReply, SubscriberStats,
    TraceSpan, MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION,
};

use crate::error::{ClientError, Result};
use crate::raw::{RawClient, DEFAULT_TIMEOUT};
use crate::retry::RetryPolicy;

/// The counters of one `Stats` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Scheduler counters (absent on the schedulerless one-shot path).
    pub sched: Option<SchedStats>,
    /// Elasticity counters.
    pub deltas: DeltaStats,
    /// Per-subscriber dropped-event counters (empty when nobody subscribes).
    pub subscribers: Vec<SubscriberStats>,
}

/// The outcome of a `Resync` round-trip: the authoritative cache state and
/// a fresh event-sequence baseline (see [`Client::resync`] /
/// [`MuxClient::resync`](crate::MuxClient::resync)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResyncSnapshot {
    /// The event-seq baseline: every event already broadcast has a smaller
    /// `seq`; the next one carries at least this value. Feed it to
    /// [`EventStream::reset_baseline`](crate::EventStream::reset_baseline).
    pub seq: u64,
    /// Every key currently cached, sorted — the authoritative state to
    /// rebuild from after dropped events.
    pub keys: Vec<String>,
    /// This connection's dropped-event counter, reset by the resync.
    pub dropped: u64,
}

/// The outcome of a `Snapshot` round-trip: what the server persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The file the snapshot was written to.
    pub path: String,
    /// Records written (plan entries + memo entries).
    pub entries: u64,
    /// Total snapshot size in bytes.
    pub bytes: u64,
}

/// The outcome of a `Load` round-trip: what a verified snapshot merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadInfo {
    /// The file the snapshot was read from.
    pub path: String,
    /// Plan entries adopted into the cache.
    pub plans: u64,
    /// Initial-setting memo entries adopted.
    pub memos: u64,
    /// Records skipped (schema drift, never an error).
    pub skipped: u64,
    /// Total snapshot size in bytes.
    pub bytes: u64,
}

/// A full plan store fetched over the wire (`FetchSnapshot`): the `data`
/// string is byte-identical to what `Snapshot` would write to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// Records carried.
    pub entries: u64,
    /// Length of `data` in bytes.
    pub bytes: u64,
    /// The snapshot in the qsync-store file format.
    pub data: String,
}

/// A blocking, typed protocol client.
///
/// `connect` performs the `Hello` version handshake; every call sends one
/// enveloped (v1) command and blocks until its reply arrives. Event lines
/// from a [`subscribe`](Client::subscribe)d stream that interleave with a
/// call's reply are buffered and handed out by
/// [`next_event`](Client::next_event).
///
/// For many requests in flight over one socket, use
/// [`MuxClient`](crate::MuxClient).
///
/// With a [`RetryPolicy`] installed ([`connect_with_retry`] or
/// [`set_retry_policy`]), idempotent calls — [`plan`], [`stats`],
/// [`metrics`], [`trace`], [`resync`] — transparently reconnect and resend
/// on transport failures. Non-idempotent calls ([`delta`], [`cancel`],
/// [`subscribe`], [`unsubscribe`]) are **never** retried; see the
/// [`retry`](crate::retry) module for the reasoning.
///
/// [`connect_with_retry`]: Client::connect_with_retry
/// [`set_retry_policy`]: Client::set_retry_policy
/// [`plan`]: Client::plan
/// [`stats`]: Client::stats
/// [`metrics`]: Client::metrics
/// [`trace`]: Client::trace
/// [`resync`]: Client::resync
/// [`delta`]: Client::delta
/// [`cancel`]: Client::cancel
/// [`subscribe`]: Client::subscribe
/// [`unsubscribe`]: Client::unsubscribe
pub struct Client {
    raw: RawClient,
    /// Where we connected — kept for retry reconnects.
    addr: SocketAddr,
    /// Socket read/write timeout applied to the connection (and reconnects).
    timeout: Duration,
    retry: Option<RetryPolicy>,
    /// Server-advertised protocol range (from the connect handshake).
    server_versions: (u32, u32),
    /// Server software identifier (from the connect handshake).
    server_ident: String,
    next_id: u64,
    /// Events that arrived while waiting for a call's reply.
    buffered_events: VecDeque<(u64, ServerEvent)>,
}

impl Client {
    /// Connect and perform the `Hello` handshake, with the default timeout.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        Self::connect_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Connect with an explicit socket read/write timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<Client> {
        let raw = RawClient::connect_timeout(addr, timeout)?;
        let mut client = Client {
            raw,
            addr,
            timeout,
            retry: None,
            server_versions: (MIN_PROTOCOL_VERSION, MAX_PROTOCOL_VERSION),
            server_ident: String::new(),
            next_id: 0,
            buffered_events: VecDeque::new(),
        };
        client.handshake()?;
        Ok(client)
    }

    /// Connect with a [`RetryPolicy`]: the initial dial-and-handshake is
    /// itself retried under the policy (with its `request_timeout` as the
    /// socket timeout), and the policy stays installed for later idempotent
    /// calls.
    pub fn connect_with_retry(addr: SocketAddr, policy: RetryPolicy) -> Result<Client> {
        let mut attempt: u32 = 0;
        loop {
            let err = match Self::connect_timeout(addr, policy.request_timeout) {
                Ok(mut client) => {
                    client.retry = Some(policy);
                    return Ok(client);
                }
                Err(e) if !retryable(&e) => return Err(e),
                Err(e) => e,
            };
            attempt += 1;
            if attempt >= policy.max_attempts.max(1) {
                return Err(ClientError::RetriesExhausted { attempts: attempt, last: Box::new(err) });
            }
            std::thread::sleep(policy.backoff(attempt - 1, u64::from(attempt)));
        }
    }

    /// Install (or with `None`, remove) a retry policy on an existing
    /// connection. Applies to idempotent calls only; see the type docs.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// The retry policy currently governing idempotent calls, if any.
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// Run the `Hello` version handshake on the current socket.
    fn handshake(&mut self) -> Result<()> {
        let id = self.fresh_id();
        let reply = self.request(ServerCommand::Hello {
            id,
            min_v: MIN_PROTOCOL_VERSION,
            max_v: MAX_PROTOCOL_VERSION,
        })?;
        match reply {
            ServerReply::Hello { min_v, max_v, server, .. } => {
                self.server_versions = (min_v, max_v);
                self.server_ident = server;
                Ok(())
            }
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Replace the (assumed broken) socket with a fresh connection and
    /// re-handshake. Connection state does not survive: buffered events are
    /// discarded and any server-side subscription is gone — after a retried
    /// call succeeds on a new connection, re-[`subscribe`](Client::subscribe)
    /// and [`resync`](Client::resync) if events matter.
    fn reconnect(&mut self) -> Result<()> {
        self.raw = RawClient::connect_timeout(self.addr, self.timeout)?;
        self.buffered_events.clear();
        self.handshake()
    }

    /// The protocol range the server advertised at connect time.
    pub fn server_versions(&self) -> (u32, u32) {
        self.server_versions
    }

    /// The server software identifier advertised at connect time.
    pub fn server_ident(&self) -> &str {
        &self.server_ident
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Send one enveloped command and block until its reply arrives,
    /// buffering any event lines that interleave. A `Fault` (or legacy
    /// `Error`) answering this command returns as [`ClientError::Api`].
    fn request(&mut self, command: ServerCommand) -> Result<ServerReply> {
        let id = command.id();
        self.raw.send_enveloped(&command)?;
        loop {
            let reply = self.raw.recv()?;
            if let ServerReply::Event { seq, event } = reply {
                self.buffered_events.push_back((seq, event));
                continue;
            }
            if let Some(error) = reply.as_error() {
                // An id-less fault on a single-in-flight connection can only
                // concern this request (e.g. a parse failure of its line).
                if error.id == Some(id) || error.id.is_none() {
                    return Err(ClientError::Api(error));
                }
            }
            if reply.correlation_id() == Some(id) {
                return Ok(reply);
            }
            return Err(ClientError::Protocol(format!(
                "reply correlates to id {:?}, expected {id}: {reply:?}",
                reply.correlation_id()
            )));
        }
    }

    /// [`request`](Client::request), wrapped in the retry loop — callers
    /// vouch that `build` produces an idempotent command. Each attempt gets a
    /// fresh id; transport failures sleep out the policy's backoff, replace
    /// the broken socket via [`reconnect`](Client::reconnect) (a failed
    /// reconnect burns an attempt too) and resend, until the attempt budget
    /// is spent.
    fn request_idempotent(
        &mut self,
        build: impl Fn(u64) -> ServerCommand,
    ) -> Result<ServerReply> {
        let Some(policy) = self.retry else {
            let id = self.fresh_id();
            return self.request(build(id));
        };
        let mut attempt: u32 = 0;
        loop {
            let id = self.fresh_id();
            let mut err = match self.request(build(id)) {
                Ok(reply) => return Ok(reply),
                Err(e) if !retryable(&e) => return Err(e),
                Err(e) => e,
            };
            // A rate-limit shed is a healthy connection saying "slow down":
            // back off and resend on the same socket. Reconnecting here
            // would be both wasteful and wrong — a fresh connection starts
            // with a full per-connection bucket, cheating the limiter.
            let rate_limited = is_rate_limited(&err);
            loop {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    return Err(ClientError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(err),
                    });
                }
                std::thread::sleep(policy.backoff(attempt - 1, id));
                if rate_limited {
                    break;
                }
                match self.reconnect() {
                    Ok(()) => break,
                    Err(e) => err = e,
                }
            }
        }
    }

    /// Request a plan and block for the response. The request's `id` is
    /// replaced with a connection-unique one (echoed in the response).
    ///
    /// Retried under the client's [`RetryPolicy`]: a plan is keyed by its
    /// request's cache key, so resending after a lost reply is safe.
    pub fn plan(&mut self, request: PlanRequest) -> Result<PlanResponse> {
        match self.request_idempotent(|id| {
            let mut request = request.clone();
            request.id = id;
            ServerCommand::Plan(request)
        })? {
            ServerReply::Plan(response) => Ok(response),
            other => Err(unexpected("Plan", &other)),
        }
    }

    /// Apply a cluster delta and block for the outcome (the delta is a
    /// barrier server-side; this can wait out queued planning work).
    ///
    /// **Never retried**, policy or not: a delta moves the cluster shape, so
    /// resending one whose reply was lost could apply it twice. On a
    /// transport failure the caller must decide — typically by
    /// [`resync`](Client::resync)ing and inspecting the authoritative state.
    pub fn delta(&mut self, mut request: DeltaRequest) -> Result<DeltaResponse> {
        request.id = self.fresh_id();
        match self.request(ServerCommand::Delta(request))? {
            ServerReply::Delta(response) => Ok(response),
            other => Err(unexpected("Delta", &other)),
        }
    }

    /// Read the server's cache/scheduler/elasticity counters.
    ///
    /// Retried under the client's [`RetryPolicy`] (read-only).
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        match self.request_idempotent(|id| ServerCommand::Stats { id })? {
            ServerReply::Stats { stats, sched, deltas, subscribers, .. } => {
                Ok(StatsSnapshot { cache: stats, sched, deltas, subscribers })
            }
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Read the server's full metrics snapshot (counters, gauges and latency
    /// histograms across transport, scheduler, engine and delta pipeline).
    ///
    /// Retried under the client's [`RetryPolicy`] (read-only).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        match self.request_idempotent(|id| ServerCommand::Metrics { id })? {
            ServerReply::Metrics { metrics, .. } => Ok(metrics),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Fetch the recorded spans of one request's trace (oldest first). The
    /// trace id is echoed in [`PlanResponse::trace_id`] — or chosen by the
    /// caller via [`PlanRequest::trace_id`]. `limit` caps the span count
    /// (server-side ring capacity when `None`).
    ///
    /// Retried under the client's [`RetryPolicy`] (read-only).
    pub fn trace(&mut self, trace_id: u64, limit: Option<usize>) -> Result<Vec<TraceSpan>> {
        match self.request_idempotent(|id| ServerCommand::Trace { id, trace_id, limit })? {
            ServerReply::Trace { spans, .. } => Ok(spans),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Recover from dropped events: returns the authoritative cache state,
    /// an event-seq baseline, and resets this connection's dropped counter.
    ///
    /// Retried under the client's [`RetryPolicy`]: resync is the designated
    /// recovery command, so re-running one is always safe.
    pub fn resync(&mut self) -> Result<ResyncSnapshot> {
        match self.request_idempotent(|id| ServerCommand::Resync { id })? {
            ServerReply::Resynced { seq, keys, dropped, .. } => {
                Ok(ResyncSnapshot { seq, keys, dropped })
            }
            other => Err(unexpected("Resync", &other)),
        }
    }

    /// Cancel a still-queued plan by the id echoed from
    /// [`plan`](Client::plan)'s request. Returns whether the plan was still
    /// queued (on this connection) and has been removed.
    ///
    /// Note: the blocking client waits out every plan it submits, so this is
    /// chiefly useful against plans submitted through the same connection by
    /// [`send_raw`](Client::send_raw)-style pipelining in tests; the
    /// multiplexing client is the natural cancel user.
    ///
    /// Never retried: whether the target was still queued is not stable
    /// across attempts.
    pub fn cancel(&mut self, plan_id: u64) -> Result<bool> {
        let id = self.fresh_id();
        match self.request(ServerCommand::Cancel { id, plan_id })? {
            ServerReply::Cancelled { cancelled, .. } => Ok(cancelled),
            other => Err(unexpected("Cancel", &other)),
        }
    }

    /// Subscribe this connection to the server's event stream; events are
    /// then read with [`next_event`](Client::next_event).
    ///
    /// Never retried: a subscription is connection state, and a retry runs
    /// on a fresh connection.
    pub fn subscribe(&mut self) -> Result<()> {
        let id = self.fresh_id();
        match self.request(ServerCommand::Subscribe { id, adopt: false })? {
            ServerReply::Subscribed { .. } => Ok(()),
            other => Err(unexpected("Subscribe", &other)),
        }
    }

    /// End this connection's event stream.
    pub fn unsubscribe(&mut self) -> Result<()> {
        let id = self.fresh_id();
        match self.request(ServerCommand::Unsubscribe { id })? {
            ServerReply::Unsubscribed { .. } => Ok(()),
            other => Err(unexpected("Unsubscribe", &other)),
        }
    }

    /// Block for the next event: buffered first, then from the socket
    /// (subject to the connection's receive timeout). Returns the server's
    /// event sequence number and the event.
    pub fn next_event(&mut self) -> Result<(u64, ServerEvent)> {
        if let Some(buffered) = self.buffered_events.pop_front() {
            return Ok(buffered);
        }
        match self.raw.recv()? {
            ServerReply::Event { seq, event } => Ok((seq, event)),
            other => {
                Err(ClientError::Protocol(format!("expected an event line, got {other:?}")))
            }
        }
    }

    /// Events received but not yet handed out by
    /// [`next_event`](Client::next_event).
    pub fn buffered_event_count(&self) -> usize {
        self.buffered_events.len()
    }

    /// Escape hatch for tests and tools: the underlying raw connection.
    pub fn raw(&mut self) -> &mut RawClient {
        &mut self.raw
    }

    /// Send a pre-serialized line as-is (tests pipelining legacy input).
    pub fn send_raw(&mut self, line: &str) -> Result<()> {
        self.raw.send_line(line)
    }
}

fn unexpected(wanted: &str, got: &ServerReply) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} reply, got {got:?}"))
}

/// Transport failures are retryable: the request may never have reached the
/// server, or the reply was lost. Among server-spoken errors (`Api`) exactly
/// one is retryable — `rate_limited`, the server's explicit "back off and
/// resend" signal (the command was rejected before any state changed).
/// Every other `Api` error and all protocol violations mean the server *did*
/// process something — retrying would not change the answer.
fn retryable(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Closed) || is_rate_limited(e)
}

/// Whether this error is the server's structured rate-limit shed.
fn is_rate_limited(e: &ClientError) -> bool {
    matches!(e, ClientError::Api(err) if err.code == qsync_api::ErrorCode::RateLimited)
}
