//! The multiplexing client: many in-flight requests over one socket.
//!
//! A background reader thread parses reply lines and routes each to its
//! waiter by the echoed correlation id; submitting threads block (or poll)
//! on their own [`Pending`] handle. One `MuxClient` is `Clone` + `Send`, so
//! a whole thread pool can share a single connection — the server fair-queues
//! all of it under one connection identity unless requests name a
//! `client_id`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use qsync_api::{
    DeltaRequest, DeltaResponse, PlanRequest, PlanResponse, ServerCommand, ServerEvent,
    ServerReply, MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION,
};

use crate::client::StatsSnapshot;
use crate::error::{ClientError, Result};
use crate::raw::parse_reply_line;

/// One in-flight request's reply slot.
#[derive(Default)]
struct Slot {
    reply: Mutex<Option<Result<ServerReply>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, reply: Result<ServerReply>) {
        *self.reply.lock().expect("reply slot poisoned") = Some(reply);
        self.ready.notify_all();
    }
}

/// Shared state between submitters and the reader thread.
struct MuxState {
    /// Correlation id → waiting slot.
    waiters: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Live event subscription, if any.
    events: Mutex<Option<mpsc::Sender<(u64, ServerEvent)>>>,
    next_id: AtomicU64,
}

impl MuxState {
    /// Fail every waiter and end the event stream (reader exit path).
    fn poison_all(&self) {
        let waiters = std::mem::take(&mut *self.waiters.lock().expect("waiter map poisoned"));
        for slot in waiters.into_values() {
            slot.fill(Err(ClientError::Closed));
        }
        self.events.lock().expect("event channel poisoned").take();
    }
}

/// Connection ownership: shuts the socket down on drop so the reader thread
/// exits even if it is blocked on a read.
struct MuxInner {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    state: Arc<MuxState>,
    server_versions: (u32, u32),
    server_ident: String,
}

impl Drop for MuxInner {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A handle to one reply, filled by the reader thread.
///
/// Dropping a `Pending` abandons the reply (it is discarded on arrival).
pub struct Pending<T> {
    slot: Arc<Slot>,
    id: u64,
    state: Arc<MuxState>,
    convert: fn(ServerReply) -> Result<T>,
}

impl<T> Pending<T> {
    /// The connection-unique correlation id of this request (usable with
    /// [`MuxClient::cancel`] while the reply has not arrived).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the reply arrives.
    pub fn wait(self) -> Result<T> {
        let mut reply = self.slot.reply.lock().expect("reply slot poisoned");
        loop {
            if let Some(outcome) = reply.take() {
                return outcome.and_then(self.convert);
            }
            reply = self.slot.ready.wait(reply).expect("reply slot poisoned");
        }
    }

    /// Block up to `timeout` for the reply; `Err(Io(TimedOut))` if it does
    /// not arrive in time (the request stays in flight — the reply will be
    /// discarded on arrival).
    pub fn wait_timeout(self, timeout: Duration) -> Result<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut reply = self.slot.reply.lock().expect("reply slot poisoned");
        loop {
            if let Some(outcome) = reply.take() {
                return outcome.and_then(self.convert);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                drop(reply);
                self.state.waiters.lock().expect("waiter map poisoned").remove(&self.id);
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no reply within the wait timeout",
                )));
            }
            let (guard, _) = self
                .slot
                .ready
                .wait_timeout(reply, deadline - now)
                .expect("reply slot poisoned");
            reply = guard;
        }
    }
}

/// A subscription's event receiver (see [`MuxClient::subscribe`]).
pub struct EventStream {
    rx: mpsc::Receiver<(u64, ServerEvent)>,
}

impl EventStream {
    /// Block for the next event; `None` once the connection closes or the
    /// subscription is replaced.
    pub fn next(&self) -> Option<(u64, ServerEvent)> {
        self.rx.recv().ok()
    }

    /// Block up to `timeout` for the next event.
    pub fn next_timeout(&self, timeout: Duration) -> Option<(u64, ServerEvent)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A multiplexing protocol client: clone it across threads, submit many
/// requests, and every reply finds its submitter.
///
/// ```no_run
/// # use qsync_client::MuxClient;
/// # use qsync_api::{ModelSpec, PlanRequest};
/// # use qsync_cluster::topology::ClusterSpec;
/// # fn demo(addr: std::net::SocketAddr) -> qsync_client::Result<()> {
/// let client = MuxClient::connect(addr)?;
/// let a = client.submit_plan(PlanRequest::new(
///     0,
///     ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
///     ClusterSpec::hybrid_small(),
/// ))?;
/// let b = client.stats()?; // interleaves with the in-flight plan
/// let plan = a.wait()?;    // routed back by id
/// # let _ = (b, plan);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct MuxClient {
    inner: Arc<MuxInner>,
}

impl MuxClient {
    /// Connect, spawn the reader thread, and perform the `Hello` handshake.
    pub fn connect(addr: SocketAddr) -> Result<MuxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let state = Arc::new(MuxState {
            waiters: Mutex::new(HashMap::new()),
            events: Mutex::new(None),
            next_id: AtomicU64::new(1),
        });
        let reader = BufReader::new(stream.try_clone()?);
        {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("qsync-client-mux-reader".into())
                .spawn(move || reader_loop(reader, &state))
                .expect("spawn mux reader");
        }
        let mut client = MuxClient {
            inner: Arc::new(MuxInner {
                writer: Mutex::new(stream.try_clone()?),
                stream,
                state,
                server_versions: (MIN_PROTOCOL_VERSION, MAX_PROTOCOL_VERSION),
                server_ident: String::new(),
            }),
        };
        let hello = client
            .submit(
                |id| ServerCommand::Hello { id, min_v: MIN_PROTOCOL_VERSION, max_v: MAX_PROTOCOL_VERSION },
                Ok,
            )?
            .wait()?;
        if let ServerReply::Hello { min_v, max_v, server, .. } = hello {
            let inner = Arc::get_mut(&mut client.inner)
                .expect("no clones exist before connect returns");
            inner.server_versions = (min_v, max_v);
            inner.server_ident = server;
        }
        Ok(client)
    }

    /// The protocol range the server advertised at connect time.
    pub fn server_versions(&self) -> (u32, u32) {
        self.inner.server_versions
    }

    /// The server software identifier advertised at connect time.
    pub fn server_ident(&self) -> &str {
        &self.inner.server_ident
    }

    /// Register a waiter, build the command with the fresh id, and send it.
    fn submit<T>(
        &self,
        build: impl FnOnce(u64) -> ServerCommand,
        convert: fn(ServerReply) -> Result<T>,
    ) -> Result<Pending<T>> {
        let state = &self.inner.state;
        let id = state.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::default());
        state.waiters.lock().expect("waiter map poisoned").insert(id, Arc::clone(&slot));
        let command = build(id);
        let envelope = qsync_api::RequestEnvelope::v1(command);
        let mut line = serde_json::to_string(&envelope).expect("envelope serializes");
        line.push('\n');
        let sent = {
            let mut writer = self.inner.writer.lock().expect("writer poisoned");
            writer.write_all(line.as_bytes())
        };
        if let Err(e) = sent {
            state.waiters.lock().expect("waiter map poisoned").remove(&id);
            return Err(ClientError::Io(e));
        }
        Ok(Pending { slot, id, state: Arc::clone(state), convert })
    }

    /// Submit a plan request; returns immediately with the [`Pending`]
    /// reply handle. The request's `id` is replaced with a
    /// connection-unique one (echoed in the response and usable with
    /// [`cancel`](MuxClient::cancel)).
    pub fn submit_plan(&self, request: PlanRequest) -> Result<Pending<PlanResponse>> {
        self.submit(
            move |id| ServerCommand::Plan(PlanRequest { id, ..request }),
            |reply| match reply {
                ServerReply::Plan(response) => Ok(response),
                other => Err(unexpected("Plan", &other)),
            },
        )
    }

    /// Request a plan and block for the response.
    pub fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        self.submit_plan(request)?.wait()
    }

    /// Submit a cluster delta; returns immediately with the reply handle.
    pub fn submit_delta(&self, request: DeltaRequest) -> Result<Pending<DeltaResponse>> {
        self.submit(
            move |id| ServerCommand::Delta(DeltaRequest { id, ..request }),
            |reply| match reply {
                ServerReply::Delta(response) => Ok(response),
                other => Err(unexpected("Delta", &other)),
            },
        )
    }

    /// Apply a cluster delta and block for the outcome.
    pub fn delta(&self, request: DeltaRequest) -> Result<DeltaResponse> {
        self.submit_delta(request)?.wait()
    }

    /// Read the server's counters.
    pub fn stats(&self) -> Result<StatsSnapshot> {
        self.submit(
            |id| ServerCommand::Stats { id },
            |reply| match reply {
                ServerReply::Stats { stats, sched, deltas, .. } => {
                    Ok(StatsSnapshot { cache: stats, sched, deltas })
                }
                other => Err(unexpected("Stats", &other)),
            },
        )?
        .wait()
    }

    /// Cancel a still-queued plan by its [`Pending::id`]. Returns whether it
    /// was still queued and has been removed — in which case the server will
    /// never reply to it, so the plan's waiter is deregistered here and its
    /// `Pending` resolves to [`ClientError::Cancelled`].
    pub fn cancel(&self, plan_id: u64) -> Result<bool> {
        let cancelled = self
            .submit(
                move |id| ServerCommand::Cancel { id, plan_id },
                |reply| match reply {
                    ServerReply::Cancelled { cancelled, .. } => Ok(cancelled),
                    other => Err(unexpected("Cancel", &other)),
                },
            )?
            .wait()?;
        if cancelled {
            // No reply will ever arrive for the cancelled plan: release its
            // waiter now instead of leaking the slot (and any blocked
            // `Pending::wait`) for the life of the connection.
            let waiter =
                self.inner.state.waiters.lock().expect("waiter map poisoned").remove(&plan_id);
            if let Some(slot) = waiter {
                slot.fill(Err(ClientError::Cancelled));
            }
        }
        Ok(cancelled)
    }

    /// Subscribe to the server's event stream. Events flow into the returned
    /// [`EventStream`] from the moment the server confirms the subscription;
    /// a later `subscribe` replaces the stream.
    pub fn subscribe(&self) -> Result<EventStream> {
        let (tx, rx) = mpsc::channel();
        *self.inner.state.events.lock().expect("event channel poisoned") = Some(tx);
        self.submit(
            |id| ServerCommand::Subscribe { id },
            |reply| match reply {
                ServerReply::Subscribed { .. } => Ok(()),
                other => Err(unexpected("Subscribe", &other)),
            },
        )?
        .wait()?;
        Ok(EventStream { rx })
    }
}

/// Reader-thread body: route every reply line to its waiter (or the event
/// stream), then poison the remaining waiters on EOF or transport error.
fn reader_loop(reader: BufReader<TcpStream>, state: &MuxState) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_reply_line(&line) {
            Ok(reply) => reply,
            // A server that emits unparseable lines is broken: stop routing.
            Err(_) => break,
        };
        if let ServerReply::Event { seq, event } = reply {
            let events = state.events.lock().expect("event channel poisoned");
            if let Some(tx) = events.as_ref() {
                let _ = tx.send((seq, event));
            }
            continue;
        }
        let Some(id) = reply.correlation_id() else {
            // An id-less fault (e.g. to a malformed line) cannot be routed;
            // surface nothing — submit-side serialization makes these
            // unreachable for well-formed clients.
            continue;
        };
        let waiter = state.waiters.lock().expect("waiter map poisoned").remove(&id);
        if let Some(slot) = waiter {
            if let Some(error) = reply.as_error() {
                slot.fill(Err(ClientError::Api(error)));
            } else {
                slot.fill(Ok(reply));
            }
        }
    }
    state.poison_all();
}

fn unexpected(wanted: &str, got: &ServerReply) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} reply, got {got:?}"))
}
