//! The multiplexing client: many in-flight requests over one socket.
//!
//! A background reader thread parses reply lines and routes each to its
//! waiter by the echoed correlation id; submitting threads block (or poll)
//! on their own [`Pending`] handle. One `MuxClient` is `Clone` + `Send`, so
//! a whole thread pool can share a single connection — the server fair-queues
//! all of it under one connection identity unless requests name a
//! `client_id`.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use qsync_api::{
    DeltaRequest, DeltaResponse, MetricsSnapshot, PlanRequest, PlanResponse, ServerCommand,
    ServerEvent, ServerReply, TraceSpan, MAX_PROTOCOL_VERSION, MIN_PROTOCOL_VERSION,
};

use crate::client::{LoadInfo, ResyncSnapshot, SnapshotBlob, SnapshotInfo, StatsSnapshot};
use crate::error::{ClientError, Result};
use crate::raw::parse_reply_line;

/// One in-flight request's reply slot.
#[derive(Default)]
struct Slot {
    reply: Mutex<Option<Result<ServerReply>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, reply: Result<ServerReply>) {
        *self.reply.lock().expect("reply slot poisoned") = Some(reply);
        self.ready.notify_all();
    }
}

/// Shared state between submitters and the reader thread.
struct MuxState {
    /// Correlation id → waiting slot.
    waiters: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Live event subscription's bounded buffer, if any.
    events: Mutex<Option<Arc<EventBuffer>>>,
    next_id: AtomicU64,
    /// Set once the reader thread exits. The first write to a dead socket
    /// can still land in the kernel buffer (the error only surfaces on a
    /// *later* write), so without this flag a request submitted after EOF
    /// would register a waiter no reader will ever fill and block forever.
    closed: AtomicBool,
}

impl MuxState {
    /// Fail every waiter and end the event stream (reader exit path).
    fn poison_all(&self) {
        // Order matters: raise `closed` before draining, so a racing
        // `submit` either observes the flag or its waiter is in the drain.
        self.closed.store(true, Ordering::SeqCst);
        let waiters = std::mem::take(&mut *self.waiters.lock().expect("waiter map poisoned"));
        for slot in waiters.into_values() {
            slot.fill(Err(ClientError::Closed));
        }
        if let Some(buffer) = self.events.lock().expect("event buffer poisoned").take() {
            buffer.close();
        }
    }
}

/// Default capacity of a subscription's withheld-event buffer (see
/// [`MuxClient::subscribe_with_capacity`]).
pub const DEFAULT_EVENT_BUFFER: usize = 1024;

/// The bounded hand-off between the reader thread and an [`EventStream`].
///
/// A consumer that stops calling [`EventStream::next`] must not make the
/// client grow without bound, so the buffer holds at most `cap` events: on
/// overflow the whole stash is discarded and only the newest event is kept —
/// the sequence discontinuity then surfaces to the consumer as an
/// [`EventItem::Gap`], exactly as if the *server* had shed the events
/// (`Resync` semantics: gaps are explicit, recovery is a resync, and the
/// freshest state wins over a stale backlog).
struct EventBuffer {
    cap: usize,
    queue: Mutex<EventQueue>,
    ready: Condvar,
}

#[derive(Default)]
struct EventQueue {
    items: VecDeque<(u64, ServerEvent)>,
    closed: bool,
}

impl EventBuffer {
    fn new(cap: usize) -> EventBuffer {
        EventBuffer { cap: cap.max(1), queue: Mutex::new(EventQueue::default()), ready: Condvar::new() }
    }

    /// Reader-thread side: enqueue, shedding the stash on overflow.
    fn push(&self, seq: u64, event: ServerEvent) {
        let mut queue = self.queue.lock().expect("event buffer poisoned");
        if queue.closed {
            return;
        }
        if queue.items.len() >= self.cap {
            queue.items.clear();
        }
        queue.items.push_back((seq, event));
        self.ready.notify_all();
    }

    /// End the stream: wake every blocked consumer; later pushes are no-ops.
    fn close(&self) {
        self.queue.lock().expect("event buffer poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Consumer side: block until an event or the close; `None` on close
    /// (buffered events drain first).
    fn pop(&self) -> Option<(u64, ServerEvent)> {
        let mut queue = self.queue.lock().expect("event buffer poisoned");
        loop {
            if let Some(item) = queue.items.pop_front() {
                return Some(item);
            }
            if queue.closed {
                return None;
            }
            queue = self.ready.wait(queue).expect("event buffer poisoned");
        }
    }

    /// [`pop`](EventBuffer::pop) with a deadline; `None` on close or timeout.
    fn pop_timeout(&self, timeout: Duration) -> Option<(u64, ServerEvent)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.queue.lock().expect("event buffer poisoned");
        loop {
            if let Some(item) = queue.items.pop_front() {
                return Some(item);
            }
            if queue.closed {
                return None;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("event buffer poisoned");
            queue = guard;
        }
    }
}

/// Connection ownership: shuts the socket down on drop so the reader thread
/// exits even if it is blocked on a read.
struct MuxInner {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    state: Arc<MuxState>,
    server_versions: (u32, u32),
    server_ident: String,
}

impl Drop for MuxInner {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A handle to one reply, filled by the reader thread.
///
/// Dropping a `Pending` abandons the reply (it is discarded on arrival).
pub struct Pending<T> {
    slot: Arc<Slot>,
    id: u64,
    state: Arc<MuxState>,
    convert: fn(ServerReply) -> Result<T>,
}

impl<T> Pending<T> {
    /// The connection-unique correlation id of this request (usable with
    /// [`MuxClient::cancel`] while the reply has not arrived).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the reply arrives.
    pub fn wait(self) -> Result<T> {
        let mut reply = self.slot.reply.lock().expect("reply slot poisoned");
        loop {
            if let Some(outcome) = reply.take() {
                return outcome.and_then(self.convert);
            }
            reply = self.slot.ready.wait(reply).expect("reply slot poisoned");
        }
    }

    /// Block up to `timeout` for the reply; `Err(Io(TimedOut))` if it does
    /// not arrive in time (the request stays in flight — the reply will be
    /// discarded on arrival).
    pub fn wait_timeout(self, timeout: Duration) -> Result<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut reply = self.slot.reply.lock().expect("reply slot poisoned");
        loop {
            if let Some(outcome) = reply.take() {
                return outcome.and_then(self.convert);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                drop(reply);
                self.state.waiters.lock().expect("waiter map poisoned").remove(&self.id);
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no reply within the wait timeout",
                )));
            }
            let (guard, _) = self
                .slot
                .ready
                .wait_timeout(reply, deadline - now)
                .expect("reply slot poisoned");
            reply = guard;
        }
    }
}

/// One item of a subscription's event stream: a live event, or an explicit
/// marker for events the server dropped (slow consumer) or this client
/// otherwise missed.
// `Event` dwarfs `Gap` since events grew adoption payloads; items are
// consumed immediately off the stream, so the transient size is fine and
// boxing would cost an allocation per delivered event.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum EventItem {
    /// A live event with its server-assigned sequence number.
    Event {
        /// The server's monotone event sequence number.
        seq: u64,
        /// The event itself.
        event: ServerEvent,
    },
    /// The stream skipped from `expected` to `got`: `got - expected` events
    /// never arrived (the server sheds events to subscribers whose outbox
    /// exceeds its cap). Recover with [`MuxClient::resync`] +
    /// [`EventStream::reset_baseline`].
    Gap {
        /// The sequence number the stream expected next.
        expected: u64,
        /// The sequence number that actually arrived (its event is delivered
        /// by the next call).
        got: u64,
    },
}

impl EventItem {
    /// The missed-event count of a gap item (0 for a live event).
    pub fn missed(&self) -> u64 {
        match self {
            EventItem::Event { .. } => 0,
            EventItem::Gap { expected, got } => got - expected,
        }
    }
}

/// Sequence bookkeeping of one event stream.
#[derive(Default)]
struct GapState {
    /// The next expected seq; `None` until the first event (a subscriber
    /// joining mid-stream starts at whatever seq arrives first) or an
    /// explicit [`EventStream::reset_baseline`].
    expected: Option<u64>,
    /// An event withheld while its preceding gap is delivered.
    pending: Option<(u64, ServerEvent)>,
}

/// A subscription's event receiver (see [`MuxClient::subscribe`]).
///
/// Sequence numbers are checked: when the server drops events for this
/// subscriber (slow consumer) the hole surfaces as an explicit
/// [`EventItem::Gap`] before the stream resumes.
///
/// The stream's client-side buffer is bounded
/// ([`DEFAULT_EVENT_BUFFER`] unless set via
/// [`MuxClient::subscribe_with_capacity`]): if the consumer falls more than
/// the capacity behind, the buffered backlog is discarded and the loss
/// surfaces as a [`Gap`](EventItem::Gap) too — same semantics, shed one hop
/// earlier.
pub struct EventStream {
    buffer: Arc<EventBuffer>,
    gaps: Mutex<GapState>,
}

impl EventStream {
    /// Block for the next item; `None` once the connection closes or the
    /// subscription is replaced.
    pub fn next(&self) -> Option<EventItem> {
        let mut gaps = self.gaps.lock().expect("gap state poisoned");
        if let Some(item) = Self::take_pending(&mut gaps) {
            return Some(item);
        }
        let (seq, event) = self.buffer.pop()?;
        Some(Self::account(&mut gaps, seq, event))
    }

    /// Block up to `timeout` for the next item.
    pub fn next_timeout(&self, timeout: Duration) -> Option<EventItem> {
        let mut gaps = self.gaps.lock().expect("gap state poisoned");
        if let Some(item) = Self::take_pending(&mut gaps) {
            return Some(item);
        }
        let (seq, event) = self.buffer.pop_timeout(timeout)?;
        Some(Self::account(&mut gaps, seq, event))
    }

    /// Restart sequence tracking at `seq` — the baseline a
    /// [`MuxClient::resync`] returns. Events already re-delivered by the
    /// resync's key list may still arrive with a smaller seq; they are
    /// passed through without raising a gap.
    pub fn reset_baseline(&self, seq: u64) {
        let mut gaps = self.gaps.lock().expect("gap state poisoned");
        gaps.expected = Some(seq);
        gaps.pending = None;
    }

    fn take_pending(gaps: &mut GapState) -> Option<EventItem> {
        let (seq, event) = gaps.pending.take()?;
        gaps.expected = Some(seq + 1);
        Some(EventItem::Event { seq, event })
    }

    /// Fold one arriving `(seq, event)` into the stream: in-order events
    /// pass through; a skipped-ahead seq yields the gap first and withholds
    /// the event; a stale seq (below the resync baseline) passes through
    /// without moving the baseline.
    fn account(gaps: &mut GapState, seq: u64, event: ServerEvent) -> EventItem {
        match gaps.expected {
            Some(expected) if seq > expected => {
                gaps.pending = Some((seq, event));
                EventItem::Gap { expected, got: seq }
            }
            Some(expected) if seq < expected => EventItem::Event { seq, event },
            _ => {
                gaps.expected = Some(seq + 1);
                EventItem::Event { seq, event }
            }
        }
    }
}

/// A multiplexing protocol client: clone it across threads, submit many
/// requests, and every reply finds its submitter.
///
/// ```no_run
/// # use qsync_client::MuxClient;
/// # use qsync_api::{ModelSpec, PlanRequest};
/// # use qsync_cluster::topology::ClusterSpec;
/// # fn demo(addr: std::net::SocketAddr) -> qsync_client::Result<()> {
/// let client = MuxClient::connect(addr)?;
/// let a = client.submit_plan(PlanRequest::new(
///     0,
///     ModelSpec::SmallMlp { batch: 8, in_features: 16, hidden: 32, classes: 4 },
///     ClusterSpec::hybrid_small(),
/// ))?;
/// let b = client.stats()?; // interleaves with the in-flight plan
/// let plan = a.wait()?;    // routed back by id
/// # let _ = (b, plan);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct MuxClient {
    inner: Arc<MuxInner>,
}

impl MuxClient {
    /// Connect, spawn the reader thread, and perform the `Hello` handshake.
    pub fn connect(addr: SocketAddr) -> Result<MuxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let state = Arc::new(MuxState {
            waiters: Mutex::new(HashMap::new()),
            events: Mutex::new(None),
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
        });
        let reader = BufReader::new(stream.try_clone()?);
        {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("qsync-client-mux-reader".into())
                .spawn(move || reader_loop(reader, &state))
                .expect("spawn mux reader");
        }
        let mut client = MuxClient {
            inner: Arc::new(MuxInner {
                writer: Mutex::new(stream.try_clone()?),
                stream,
                state,
                server_versions: (MIN_PROTOCOL_VERSION, MAX_PROTOCOL_VERSION),
                server_ident: String::new(),
            }),
        };
        let hello = client
            .submit(
                |id| ServerCommand::Hello { id, min_v: MIN_PROTOCOL_VERSION, max_v: MAX_PROTOCOL_VERSION },
                Ok,
            )?
            .wait()?;
        if let ServerReply::Hello { min_v, max_v, server, .. } = hello {
            let inner = Arc::get_mut(&mut client.inner)
                .expect("no clones exist before connect returns");
            inner.server_versions = (min_v, max_v);
            inner.server_ident = server;
        }
        Ok(client)
    }

    /// The protocol range the server advertised at connect time.
    pub fn server_versions(&self) -> (u32, u32) {
        self.inner.server_versions
    }

    /// The server software identifier advertised at connect time.
    pub fn server_ident(&self) -> &str {
        &self.inner.server_ident
    }

    /// Register a waiter, build the command with the fresh id, and send it.
    fn submit<T>(
        &self,
        build: impl FnOnce(u64) -> ServerCommand,
        convert: fn(ServerReply) -> Result<T>,
    ) -> Result<Pending<T>> {
        let state = &self.inner.state;
        let id = state.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::default());
        state.waiters.lock().expect("waiter map poisoned").insert(id, Arc::clone(&slot));
        if state.closed.load(Ordering::SeqCst) {
            // Insert-then-check: if the reader exited before our insert we
            // see the flag; if it exits after, `poison_all` drains our slot.
            state.waiters.lock().expect("waiter map poisoned").remove(&id);
            return Err(ClientError::Closed);
        }
        let command = build(id);
        let envelope = qsync_api::RequestEnvelope::v1(command);
        let mut line = serde_json::to_string(&envelope).expect("envelope serializes");
        line.push('\n');
        let sent = {
            let mut writer = self.inner.writer.lock().expect("writer poisoned");
            writer.write_all(line.as_bytes())
        };
        if let Err(e) = sent {
            state.waiters.lock().expect("waiter map poisoned").remove(&id);
            return Err(ClientError::Io(e));
        }
        Ok(Pending { slot, id, state: Arc::clone(state), convert })
    }

    /// Submit a plan request; returns immediately with the [`Pending`]
    /// reply handle. The request's `id` is replaced with a
    /// connection-unique one (echoed in the response and usable with
    /// [`cancel`](MuxClient::cancel)).
    pub fn submit_plan(&self, request: PlanRequest) -> Result<Pending<PlanResponse>> {
        self.submit(
            move |id| ServerCommand::Plan(PlanRequest { id, ..request }),
            |reply| match reply {
                ServerReply::Plan(response) => Ok(response),
                other => Err(unexpected("Plan", &other)),
            },
        )
    }

    /// Request a plan and block for the response.
    pub fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        self.submit_plan(request)?.wait()
    }

    /// Submit a cluster delta; returns immediately with the reply handle.
    pub fn submit_delta(&self, request: DeltaRequest) -> Result<Pending<DeltaResponse>> {
        self.submit(
            move |id| ServerCommand::Delta(DeltaRequest { id, ..request }),
            |reply| match reply {
                ServerReply::Delta(response) => Ok(response),
                other => Err(unexpected("Delta", &other)),
            },
        )
    }

    /// Apply a cluster delta and block for the outcome.
    pub fn delta(&self, request: DeltaRequest) -> Result<DeltaResponse> {
        self.submit_delta(request)?.wait()
    }

    /// Read the server's counters.
    pub fn stats(&self) -> Result<StatsSnapshot> {
        self.submit(
            |id| ServerCommand::Stats { id },
            |reply| match reply {
                ServerReply::Stats { stats, sched, deltas, subscribers, .. } => {
                    Ok(StatsSnapshot { cache: stats, sched, deltas, subscribers })
                }
                other => Err(unexpected("Stats", &other)),
            },
        )?
        .wait()
    }

    /// Read the server's full metrics snapshot (counters, gauges and latency
    /// histograms across transport, scheduler, engine and delta pipeline).
    pub fn metrics(&self) -> Result<MetricsSnapshot> {
        self.submit(
            |id| ServerCommand::Metrics { id },
            |reply| match reply {
                ServerReply::Metrics { metrics, .. } => Ok(metrics),
                other => Err(unexpected("Metrics", &other)),
            },
        )?
        .wait()
    }

    /// Fetch the recorded spans of one request's trace (oldest first). The
    /// trace id is echoed in [`PlanResponse::trace_id`] — or chosen by the
    /// caller via [`PlanRequest::trace_id`].
    pub fn trace(&self, trace_id: u64, limit: Option<usize>) -> Result<Vec<TraceSpan>> {
        self.submit(
            move |id| ServerCommand::Trace { id, trace_id, limit },
            |reply| match reply {
                ServerReply::Trace { spans, .. } => Ok(spans),
                other => Err(unexpected("Trace", &other)),
            },
        )?
        .wait()
    }

    /// Recover from dropped events: returns the authoritative cache state,
    /// an event-seq baseline (feed it to [`EventStream::reset_baseline`]),
    /// and resets this connection's dropped counter.
    pub fn resync(&self) -> Result<ResyncSnapshot> {
        self.submit(
            |id| ServerCommand::Resync { id },
            |reply| match reply {
                ServerReply::Resynced { seq, keys, dropped, .. } => {
                    Ok(ResyncSnapshot { seq, keys, dropped })
                }
                other => Err(unexpected("Resync", &other)),
            },
        )?
        .wait()
    }

    /// Cancel a still-queued plan by its [`Pending::id`]. Returns whether it
    /// was still queued and has been removed — in which case the server will
    /// never reply to it, so the plan's waiter is deregistered here and its
    /// `Pending` resolves to [`ClientError::Cancelled`].
    pub fn cancel(&self, plan_id: u64) -> Result<bool> {
        let cancelled = self
            .submit(
                move |id| ServerCommand::Cancel { id, plan_id },
                |reply| match reply {
                    ServerReply::Cancelled { cancelled, .. } => Ok(cancelled),
                    other => Err(unexpected("Cancel", &other)),
                },
            )?
            .wait()?;
        if cancelled {
            // No reply will ever arrive for the cancelled plan: release its
            // waiter now instead of leaking the slot (and any blocked
            // `Pending::wait`) for the life of the connection.
            let waiter =
                self.inner.state.waiters.lock().expect("waiter map poisoned").remove(&plan_id);
            if let Some(slot) = waiter {
                slot.fill(Err(ClientError::Cancelled));
            }
        }
        Ok(cancelled)
    }

    /// Subscribe to the server's event stream. Events flow into the returned
    /// [`EventStream`] from the moment the server confirms the subscription;
    /// a later `subscribe` replaces (and ends) the previous stream. The
    /// stream's buffer holds [`DEFAULT_EVENT_BUFFER`] events.
    pub fn subscribe(&self) -> Result<EventStream> {
        self.subscribe_with_capacity(DEFAULT_EVENT_BUFFER)
    }

    /// [`subscribe`](MuxClient::subscribe) with an explicit buffer capacity
    /// (clamped to at least 1). A consumer that falls more than `cap` events
    /// behind loses the buffered backlog and sees an
    /// [`EventItem::Gap`] — size the buffer for the burstiness you expect.
    pub fn subscribe_with_capacity(&self, cap: usize) -> Result<EventStream> {
        self.subscribe_inner(cap, false)
    }

    /// [`subscribe`](MuxClient::subscribe) with adoption payloads: the
    /// server's `Replanned`/`PlanReady` events carry the full cached-plan
    /// payload ([`qsync_api::PlanPayload`]) on this connection, so a replica
    /// can mirror the primary's cache entries byte-for-byte instead of
    /// re-planning. Payload lines are large — size consumption accordingly.
    pub fn subscribe_adopt(&self) -> Result<EventStream> {
        self.subscribe_inner(DEFAULT_EVENT_BUFFER, true)
    }

    fn subscribe_inner(&self, cap: usize, adopt: bool) -> Result<EventStream> {
        let buffer = Arc::new(EventBuffer::new(cap));
        let previous = self
            .inner
            .state
            .events
            .lock()
            .expect("event buffer poisoned")
            .replace(Arc::clone(&buffer));
        if let Some(old) = previous {
            old.close();
        }
        self.submit(
            move |id| ServerCommand::Subscribe { id, adopt },
            |reply| match reply {
                ServerReply::Subscribed { .. } => Ok(()),
                other => Err(unexpected("Subscribe", &other)),
            },
        )?
        .wait()?;
        Ok(EventStream { buffer, gaps: Mutex::new(GapState::default()) })
    }

    /// Ask the server to persist its plan store. `path: None` writes to the
    /// server's configured `--store` path (a fault if it has none).
    pub fn snapshot(&self, path: Option<String>) -> Result<SnapshotInfo> {
        self.submit(
            move |id| ServerCommand::Snapshot { id, path },
            |reply| match reply {
                ServerReply::Snapshotted { path, entries, bytes, .. } => {
                    Ok(SnapshotInfo { path, entries, bytes })
                }
                other => Err(unexpected("Snapshot", &other)),
            },
        )?
        .wait()
    }

    /// Ask the server to verify and merge a snapshot file into its cache and
    /// memo table. `path: None` reads the configured `--store` path.
    pub fn load(&self, path: Option<String>) -> Result<LoadInfo> {
        self.submit(
            move |id| ServerCommand::Load { id, path },
            |reply| match reply {
                ServerReply::Loaded { path, plans, memos, skipped, bytes, .. } => {
                    Ok(LoadInfo { path, plans, memos, skipped, bytes })
                }
                other => Err(unexpected("Load", &other)),
            },
        )?
        .wait()
    }

    /// Fetch the server's full plan store over the wire — the replication
    /// bootstrap. The returned blob verifies and loads exactly like a
    /// snapshot file.
    pub fn fetch_snapshot(&self) -> Result<SnapshotBlob> {
        self.submit(
            |id| ServerCommand::FetchSnapshot { id },
            |reply| match reply {
                ServerReply::SnapshotData { entries, bytes, data, .. } => {
                    Ok(SnapshotBlob { entries, bytes, data })
                }
                other => Err(unexpected("FetchSnapshot", &other)),
            },
        )?
        .wait()
    }
}

/// Reader-thread body: route every reply line to its waiter (or the event
/// stream), then poison the remaining waiters on EOF or transport error.
fn reader_loop(reader: BufReader<TcpStream>, state: &MuxState) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_reply_line(&line) {
            Ok(reply) => reply,
            // A server that emits unparseable lines is broken: stop routing.
            Err(_) => break,
        };
        if let ServerReply::Event { seq, event } = reply {
            let buffer =
                state.events.lock().expect("event buffer poisoned").as_ref().map(Arc::clone);
            if let Some(buffer) = buffer {
                buffer.push(seq, event);
            }
            continue;
        }
        let Some(id) = reply.correlation_id() else {
            // An id-less fault (e.g. to a malformed line) cannot be routed;
            // surface nothing — submit-side serialization makes these
            // unreachable for well-formed clients.
            continue;
        };
        let waiter = state.waiters.lock().expect("waiter map poisoned").remove(&id);
        if let Some(slot) = waiter {
            if let Some(error) = reply.as_error() {
                slot.fill(Err(ClientError::Api(error)));
            } else {
                slot.fill(Ok(reply));
            }
        }
    }
    state.poison_all();
}

fn unexpected(wanted: &str, got: &ServerReply) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} reply, got {got:?}"))
}
