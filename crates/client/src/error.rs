//! Client-side error type.

use qsync_api::ApiError;

/// Anything that can go wrong talking to a plan server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server answered with a structured error ([`ApiError`]). Replies
    /// from legacy (v0) servers surface here too, with code
    /// [`ErrorCode::Internal`](qsync_api::ErrorCode::Internal) since v0
    /// carried no code.
    Api(ApiError),
    /// The server's bytes did not parse as protocol output, or a reply of an
    /// unexpected type answered this request.
    Protocol(String),
    /// The connection (or the multiplexer's reader) shut down while this
    /// request was in flight.
    Closed,
    /// This request was cancelled by this client
    /// ([`MuxClient::cancel`](crate::MuxClient::cancel)); the server will
    /// never reply to it.
    Cancelled,
    /// Every attempt permitted by the client's
    /// [`RetryPolicy`](crate::RetryPolicy) failed with a transport error;
    /// `last` is the final attempt's failure.
    RetriesExhausted {
        /// How many attempts were made (== the policy's `max_attempts`).
        attempts: u32,
        /// The error that failed the final attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Api(e) => write!(f, "server error ({}): {e}", e.code.name()),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Closed => f.write_str("connection closed"),
            ClientError::Cancelled => f.write_str("request cancelled by this client"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ApiError> for ClientError {
    fn from(e: ApiError) -> Self {
        ClientError::Api(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;
