//! Histogram correctness: quantile error bounds against an exact reference,
//! determinism of counts under concurrent recording, and merge/snapshot
//! consistency. The log-linear layout promises every estimate lands within
//! 1/16 (6.25%) above the true quantile — these tests enforce that bound,
//! not just "close enough".

use proptest::prelude::*;
use qsync_obs::{bucket_index, bucket_upper_bound, HistogramSnapshot, Registry};

/// Exact quantile: the value at rank `ceil(q * n)` of the sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target - 1]
}

/// The histogram estimate never undershoots the exact quantile and
/// overshoots by at most 1/16 of it (+1 for integer truncation).
fn assert_quantile_bounds(sorted: &[u64], snapshot: &HistogramSnapshot, q: f64) {
    let exact = exact_quantile(sorted, q);
    let got = snapshot.quantile(q);
    assert!(got >= exact, "q={q}: estimate {got} under exact {exact}");
    assert!(
        got <= exact + exact / 16 + 1,
        "q={q}: estimate {got} over bound for exact {exact}"
    );
}

#[test]
fn quantiles_bounded_across_bucket_boundaries() {
    // Values straddling the exact/log-linear boundary (16) and several
    // power-of-two group boundaries.
    let values: Vec<u64> = (0..=40)
        .chain([63, 64, 65, 127, 128, 129, 1023, 1024, 1025, 65_535, 65_536, 1 << 40])
        .collect();
    let registry = Registry::new();
    let h = registry.histogram("h");
    for &v in &values {
        h.record(v);
    }
    let snapshot = h.snapshot();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    for q in [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        assert_quantile_bounds(&sorted, &snapshot, q);
    }
    assert_eq!(snapshot.count, sorted.len() as u64);
    assert_eq!(snapshot.sum, sorted.iter().sum::<u64>());
    assert_eq!(snapshot.min, 0);
    assert_eq!(snapshot.max, 1 << 40);
}

#[test]
fn concurrent_recording_loses_nothing() {
    let registry = Registry::new();
    let h = registry.histogram("concurrent");
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = std::sync::Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Deterministic per-thread mix hitting many buckets.
                    h.record((i * 31 + t * 7) % 100_000);
                }
            });
        }
    });
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, threads * per_thread);
    let bucket_total: u64 = snapshot.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, threads * per_thread, "bucket counts must sum to count");
    // The same values recorded serially give the identical distribution.
    let serial = registry.histogram("serial");
    for t in 0..threads {
        for i in 0..per_thread {
            serial.record((i * 31 + t * 7) % 100_000);
        }
    }
    let serial_snapshot = serial.snapshot();
    assert_eq!(snapshot.buckets, serial_snapshot.buckets);
    assert_eq!(snapshot.sum, serial_snapshot.sum);
    assert_eq!(snapshot.min, serial_snapshot.min);
    assert_eq!(snapshot.max, serial_snapshot.max);
}

#[test]
fn merge_equals_recording_into_one() {
    let registry = Registry::new();
    let (a, b, both) =
        (registry.histogram("a"), registry.histogram("b"), registry.histogram("both"));
    for v in [0u64, 5, 16, 17, 300, 50_000] {
        a.record(v);
        both.record(v);
    }
    for v in [3u64, 5, 90, 300, 1 << 33] {
        b.record(v);
        both.record(v);
    }
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    assert_eq!(merged, both.snapshot());
    // Merging into an empty snapshot copies; merging an empty one is a no-op.
    let mut empty = HistogramSnapshot::default();
    empty.merge(&b.snapshot());
    assert_eq!(empty, b.snapshot());
    let mut unchanged = a.snapshot();
    unchanged.merge(&HistogramSnapshot::default());
    assert_eq!(unchanged, a.snapshot());
}

#[test]
fn every_value_lands_within_its_buckets_bounds() {
    // The invariant quantile correctness rests on: index → [lower, upper]
    // brackets the value, across all boundary neighborhoods.
    for shift in 4..63u32 {
        for delta in -2i64..=2 {
            let v = ((1u64 << shift) as i64 + delta) as u64;
            let i = bucket_index(v);
            assert!(qsync_obs::bucket_lower_bound(i) <= v && bucket_upper_bound(i) >= v, "{v}");
        }
    }
}

proptest! {
    #[test]
    fn prop_quantiles_track_exact_reference(
        values in prop::collection::vec(0u64..=1_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let registry = Registry::new();
        let h = registry.histogram("p");
        for &v in &values {
            h.record(v);
        }
        let snapshot = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &qs {
            assert_quantile_bounds(&sorted, &snapshot, q);
        }
    }

    #[test]
    fn prop_merge_is_order_insensitive(
        xs in prop::collection::vec(0u64..=1_000_000, 0..60),
        ys in prop::collection::vec(0u64..=1_000_000, 0..60),
    ) {
        let registry = Registry::new();
        let (a, b) = (registry.histogram("a"), registry.histogram("b"));
        for &v in &xs { a.record(v); }
        for &v in &ys { b.record(v); }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        prop_assert_eq!(ab, ba);
    }
}
