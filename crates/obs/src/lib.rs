//! # qsync-obs — lock-light observability primitives for the serving stack
//!
//! Three instrument types sized for the reactor hot path, a registry that
//! interns them at registration time, and a trace-span ring buffer:
//!
//! * [`Counter`] — monotonic `AtomicU64`; one `fetch_add` to record.
//! * [`Gauge`] — signed level (`AtomicI64`); `set`/`add` with relaxed stores.
//! * [`Histogram`] — fixed-bucket **log-linear** histogram ([`NUM_BUCKETS`]
//!   buckets, 16 linear subdivisions per power of two, so every recorded
//!   value lands in a bucket whose width is at most 1/16 of its lower bound).
//!   Recording is four relaxed atomic ops: bucket, count, sum, min/max. No
//!   allocation, no locks.
//! * [`Registry`] — names are interned once at registration (a `Mutex` is
//!   taken *only* there); the returned `Arc` handles are then recorded
//!   against lock-free. [`Registry::snapshot`] produces the serializable
//!   [`MetricsSnapshot`], which also renders a Prometheus-style text
//!   exposition ([`MetricsSnapshot::render_prometheus`]).
//! * [`TraceLog`] — mints per-request trace ids and keeps the last
//!   [`TraceLog::capacity`] spans in a ring, so one slow request can be
//!   reconstructed stage by stage after the fact.
//!
//! A [`Registry`] (and every instrument it hands out) can be constructed
//! disabled — record calls become a branch on a `bool` — which is how the
//! serving benches pin the metrics-on vs metrics-off overhead.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// log2 of the number of linear subdivisions per power of two (16).
const SUB_BITS: u32 = 4;
/// Linear subdivisions per power of two.
const SUBDIVISIONS: u64 = 1 << SUB_BITS;
/// Total bucket count: values `< 16` get exact unit buckets, then 16 buckets
/// per power of two up to `u64::MAX` (msb 4..=63 → 60 groups of 16).
pub const NUM_BUCKETS: usize = (SUBDIVISIONS as usize) * 61;

/// The bucket index a value records into.
///
/// Values below 16 map to themselves (exact); larger values map to
/// `((msb - 3) << 4) + top-4-mantissa-bits`, giving a relative bucket width
/// of at most 1/16.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBDIVISIONS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let within = ((value >> shift) - SUBDIVISIONS) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + within
}

/// The smallest value that records into bucket `index`.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUBDIVISIONS as usize {
        return index as u64;
    }
    let group = (index >> SUB_BITS) - 1;
    (SUBDIVISIONS + (index as u64 & (SUBDIVISIONS - 1))) << group
}

/// The largest value that records into bucket `index` (inclusive).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUBDIVISIONS as usize {
        return index as u64;
    }
    let group = (index >> SUB_BITS) - 1;
    bucket_lower_bound(index) + ((1u64 << group) - 1)
}

/// A monotonic counter. Recording is one relaxed `fetch_add`.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: bool,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter { value: AtomicU64::new(0), enabled }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed level (queue depth, open connections, window occupancy).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
    enabled: bool,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge { value: AtomicI64::new(0), enabled }
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Move the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log-linear histogram; see the crate docs for the layout.
///
/// The bucket array is allocated once at registration; recording touches
/// only atomics (bucket, count, sum, min, max) with relaxed ordering.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    enabled: bool,
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            enabled,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount { index: index as u32, count: n });
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_lower_bound`]/[`bucket_upper_bound`]).
    pub index: u32,
    /// Values recorded into this bucket.
    pub count: u64,
}

/// A serializable point-in-time copy of a [`Histogram`]. Only non-empty
/// buckets are carried.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets in index order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding that rank, clamped into `[min, max]` — so the estimate is
    /// never below the true quantile and overshoots by at most 1/16 of it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= target {
                return bucket_upper_bound(bucket.index as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self` (bucket-wise addition; min/max widen).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<BucketCount> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) if x.index == y.index => {
                    merged.push(BucketCount { index: x.index, count: x.count + y.count });
                    a.next();
                    b.next();
                }
                (Some(x), Some(y)) if x.index < y.index => {
                    merged.push((*x).clone());
                    a.next();
                }
                (Some(_), Some(y)) => {
                    merged.push((*y).clone());
                    b.next();
                }
                (Some(x), None) => {
                    merged.push((*x).clone());
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push((*y).clone());
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// A named counter value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name (may carry a `{label="value"}` block).
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A named gauge level inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Metric name (may carry a `{label="value"}` block).
    pub name: String,
    /// Gauge level at snapshot time.
    pub value: i64,
}

/// A named histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramMetric {
    /// Metric name (may carry a `{label="value"}` block).
    pub name: String,
    /// The distribution snapshot.
    pub histogram: HistogramSnapshot,
}

/// Everything a [`Registry`] knows, in registration order — the payload of
/// the wire `Metrics` reply and the source of the text exposition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters in registration order.
    pub counters: Vec<CounterValue>,
    /// All gauges in registration order.
    pub gauges: Vec<GaugeValue>,
    /// All histograms in registration order.
    pub histograms: Vec<HistogramMetric>,
}

impl MetricsSnapshot {
    /// Find a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Find a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Find a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name).map(|h| &h.histogram)
    }

    /// Render the Prometheus-style text exposition: one `# TYPE` line per
    /// *base* metric name (labeled series sharing a base — e.g.
    /// `qsync_plan_latency_us{kind="cold"|"warm"}` — are grouped under a
    /// single declaration, as the text-format parser requires), one sample
    /// per counter/gauge, and cumulative `_bucket{le="…"}` series (plus
    /// `_sum`/`_count`) per histogram. Names carrying a `{label="value"}`
    /// block keep it; the `le` label is spliced in.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counter_names: Vec<&str> = self.counters.iter().map(|c| c.name.as_str()).collect();
        for (base, idxs) in group_by_base(&counter_names) {
            out.push_str(&format!("# TYPE {base} counter\n"));
            for i in idxs {
                let c = &self.counters[i];
                out.push_str(&format!("{} {}\n", c.name, c.value));
            }
        }
        let gauge_names: Vec<&str> = self.gauges.iter().map(|g| g.name.as_str()).collect();
        for (base, idxs) in group_by_base(&gauge_names) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
            for i in idxs {
                let g = &self.gauges[i];
                out.push_str(&format!("{} {}\n", g.name, g.value));
            }
        }
        let hist_names: Vec<&str> = self.histograms.iter().map(|h| h.name.as_str()).collect();
        for (base, idxs) in group_by_base(&hist_names) {
            out.push_str(&format!("# TYPE {base} histogram\n"));
            for i in idxs {
                let h = &self.histograms[i];
                let (_, labels) = split_labels(&h.name);
                let mut cumulative = 0u64;
                for bucket in &h.histogram.buckets {
                    cumulative += bucket.count;
                    let le = bucket_upper_bound(bucket.index as usize);
                    out.push_str(&format!(
                        "{base}_bucket{{{}le=\"{le}\"}} {cumulative}\n",
                        labels_prefix(labels)
                    ));
                }
                out.push_str(&format!(
                    "{base}_bucket{{{}le=\"+Inf\"}} {}\n",
                    labels_prefix(labels),
                    h.histogram.count
                ));
                let suffix = match labels {
                    Some(l) => format!("{{{l}}}"),
                    None => String::new(),
                };
                out.push_str(&format!("{base}_sum{suffix} {}\n", h.histogram.sum));
                out.push_str(&format!("{base}_count{suffix} {}\n", h.histogram.count));
            }
        }
        out
    }
}

/// Group metric names by base (label block stripped), preserving the
/// first-appearance order of bases and the entry order within each group.
/// The Prometheus text format allows at most one `# TYPE` line per metric
/// name and wants all of a name's series contiguous.
fn group_by_base(names: &[&str]) -> Vec<(String, Vec<usize>)> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let (base, _) = split_labels(name);
        match groups.iter_mut().find(|(b, _)| b == base) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((base.to_string(), vec![i])),
        }
    }
    groups
}

/// Split `name{a="b"}` into `("name", Some("a=\"b\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(open), true) => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

fn labels_prefix(labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{l},"),
        None => String::new(),
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// Interns instruments by name at registration time; handing out `Arc`
/// handles that record lock-free afterwards. Registering the same name twice
/// returns the same instrument.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry: instruments record.
    pub fn new() -> Self {
        Registry { enabled: true, inner: Mutex::new(RegistryInner::default()) }
    }

    /// A disabled registry: every instrument it hands out drops records at a
    /// branch. Used to pin the instrumentation overhead in benches.
    pub fn disabled() -> Self {
        Registry { enabled: false, inner: Mutex::new(RegistryInner::default()) }
    }

    /// Whether instruments from this registry record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new(self.enabled));
        inner.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new(self.enabled));
        inner.gauges.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(self.enabled));
        inner.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Snapshot every registered instrument in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| CounterValue { name: name.clone(), value: c.get() })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| GaugeValue { name: name.clone(), value: g.get() })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| HistogramMetric { name: name.clone(), histogram: h.snapshot() })
                .collect(),
        }
    }
}

/// One stage of one request's journey through the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The request's trace id.
    pub trace_id: u64,
    /// Stage name (`parse`, `dispatch`, `cache_hit`, `cold_plan`, …).
    pub stage: String,
    /// Stage start, microseconds since the trace log's origin.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Free-form detail (cache key, outcome, byte count, …).
    pub detail: String,
}

/// A bounded ring of recent [`TraceSpan`]s plus the trace-id mint.
///
/// Spans from all requests interleave in one ring; [`TraceLog::spans_for`]
/// filters by id. The ring holds the last [`TraceLog::capacity`] spans, so
/// reconstruction works for recent requests — which is the case that
/// matters when chasing a slow one.
#[derive(Debug)]
pub struct TraceLog {
    origin: Instant,
    next_trace: AtomicU64,
    ring: Mutex<VecDeque<TraceSpan>>,
    capacity: usize,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(4096)
    }
}

impl TraceLog {
    /// A trace log keeping the last `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            origin: Instant::now(),
            next_trace: AtomicU64::new(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mint a fresh trace id (1, 2, 3, …).
    pub fn mint(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since this log was created — span timestamps.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Append a span, evicting the oldest beyond capacity.
    pub fn record(&self, span: TraceSpan) {
        let mut ring = self.ring.lock().expect("trace log poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Record a stage that started at `start_us` and just finished.
    pub fn span(&self, trace_id: u64, stage: &str, start_us: u64, detail: String) {
        let dur_us = self.now_us().saturating_sub(start_us);
        self.record(TraceSpan { trace_id, stage: stage.to_string(), start_us, dur_us, detail });
    }

    /// The most recent `limit` spans for `trace_id`, oldest first.
    pub fn spans_for(&self, trace_id: u64, limit: usize) -> Vec<TraceSpan> {
        let ring = self.ring.lock().expect("trace log poisoned");
        let mut spans: Vec<TraceSpan> =
            ring.iter().filter(|s| s.trace_id == trace_id).cloned().collect();
        if spans.len() > limit {
            spans.drain(..spans.len() - limit);
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverse_bounds_bracket_it() {
        let mut last = 0usize;
        for v in [0u64, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 12345, u32::MAX as u64, u64::MAX]
        {
            let i = bucket_index(v);
            assert!(i >= last || v == 0, "index must be monotone in value");
            last = i;
            assert!(bucket_lower_bound(i) <= v, "lower({i}) > {v}");
            assert!(bucket_upper_bound(i) >= v, "upper({i}) < {v}");
            assert!(i < NUM_BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0u64..32 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_width_is_at_most_one_sixteenth_of_lower_bound() {
        for i in 16..NUM_BUCKETS {
            let lower = bucket_lower_bound(i);
            let width = bucket_upper_bound(i) - lower + 1;
            assert!(width * 16 <= lower.max(16), "bucket {i}: width {width} lower {lower}");
        }
    }

    #[test]
    fn disabled_instruments_do_not_record() {
        let registry = Registry::disabled();
        let c = registry.counter("c");
        let g = registry.gauge("g");
        let h = registry.histogram("h");
        c.inc();
        g.set(7);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_interns_by_name() {
        let registry = Registry::new();
        let a = registry.counter("same");
        let b = registry.counter("same");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(registry.snapshot().counters.len(), 1);
    }

    #[test]
    fn snapshot_lookup_helpers_find_by_name() {
        let registry = Registry::new();
        registry.counter("c").add(3);
        registry.gauge("g").set(-2);
        registry.histogram("h").record(10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-2));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn prometheus_rendering_splices_le_into_label_blocks() {
        let registry = Registry::new();
        registry.counter("qsync_cache_hits{shard=\"3\"}").add(5);
        let h = registry.histogram("qsync_plan_us{kind=\"cold\"}");
        h.record(10);
        h.record(20);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# TYPE qsync_cache_hits counter"), "{text}");
        assert!(text.contains("qsync_cache_hits{shard=\"3\"} 5"), "{text}");
        assert!(text.contains("qsync_plan_us_bucket{kind=\"cold\",le=\"10\"} 1"), "{text}");
        assert!(text.contains("qsync_plan_us_bucket{kind=\"cold\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("qsync_plan_us_sum{kind=\"cold\"} 30"), "{text}");
        assert!(text.contains("qsync_plan_us_count{kind=\"cold\"} 2"), "{text}");
    }

    #[test]
    fn prometheus_rendering_declares_each_base_name_once() {
        // Labeled series sharing a base name — the normal case for every
        // per-kind/per-shard instrument — must sit under a single `# TYPE`
        // declaration with all their samples contiguous, or the Prometheus
        // text-format parser rejects the scrape.
        let registry = Registry::new();
        registry.counter("qsync_cache_hits{shard=\"0\"}").inc();
        registry.gauge("qsync_queue_depth{class=\"interactive\"}").set(1);
        for kind in ["cold", "warm", "hit"] {
            registry.histogram(&format!("qsync_plan_latency_us{{kind=\"{kind}\"}}")).record(10);
        }
        registry.counter("qsync_accepts_total").inc();
        registry.counter("qsync_cache_hits{shard=\"1\"}").inc();
        registry.gauge("qsync_queue_depth{class=\"batch\"}").set(2);
        let text = registry.snapshot().render_prometheus();
        let mut declared = std::collections::HashSet::new();
        let mut current = String::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(declared.insert(name.to_string()), "duplicate # TYPE for {name}:\n{text}");
                current = name.to_string();
            } else {
                assert!(
                    line.starts_with(&current),
                    "sample outside its base's TYPE block: {line}\n{text}"
                );
            }
        }
        assert!(declared.contains("qsync_plan_latency_us"), "{text}");
        assert!(text.contains("qsync_cache_hits{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("qsync_cache_hits{shard=\"1\"} 1"), "{text}");
        assert!(text.contains("qsync_queue_depth{class=\"batch\"} 2"), "{text}");
    }

    #[test]
    fn trace_log_rings_and_filters() {
        let log = TraceLog::new(4);
        let id = log.mint();
        let other = log.mint();
        assert_ne!(id, other);
        for i in 0..6u64 {
            log.record(TraceSpan {
                trace_id: if i % 2 == 0 { id } else { other },
                stage: format!("s{i}"),
                start_us: i,
                dur_us: 1,
                detail: String::new(),
            });
        }
        // Ring of 4 keeps spans 2..6; ids alternate, so two spans each.
        let spans = log.spans_for(id, 16);
        assert_eq!(spans.iter().map(|s| s.stage.as_str()).collect::<Vec<_>>(), ["s2", "s4"]);
        assert_eq!(log.spans_for(id, 1).len(), 1);
        assert_eq!(log.spans_for(id, 1)[0].stage, "s4");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = Registry::new();
        registry.counter("c").add(3);
        registry.gauge("g").set(-2);
        let h = registry.histogram("h");
        h.record(1);
        h.record(1_000_000);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
