//! Cross-crate integration test: the serving subsystem on top of the full
//! planning pipeline, driven through the workspace facade crate.
//!
//! Complements `crates/serve/tests/server_e2e.rs` (which tests the server in
//! isolation) by asserting the serving-layer guarantees against the *paper's*
//! pipeline invariants: served plans respect the allocator's throughput bound
//! and keep training devices at full precision, across cold, cached and
//! warm-replanned paths.

use qsync::cluster::topology::ClusterSpec;
use qsync::core::plan::PrecisionPlan;
use qsync::core::system::{QSyncConfig, QSyncSystem};
use qsync::lp_kernels::precision::Precision;
use qsync::serve::{ClusterDelta, DeltaRequest, ModelSpec, PlanEngine, PlanOutcome, PlanRequest};

fn spec() -> ModelSpec {
    ModelSpec::SmallMlp { batch: 64, in_features: 512, hidden: 1024, classes: 16 }
}

fn system_for(spec: &ModelSpec, cluster: &ClusterSpec) -> QSyncSystem {
    QSyncSystem::new(spec.build(), cluster.clone(), QSyncConfig::default())
}

fn assert_plan_is_valid(plan: &PrecisionPlan, spec: &ModelSpec, cluster: &ClusterSpec, t_min: f64) {
    let system = system_for(spec, cluster);
    // Throughput bound: the served plan never drops below the allocator's T_min.
    let t = system.predict_iteration_us(plan);
    let tol = 1.0 + system.config.throughput_tolerance;
    assert!(t <= t_min * tol + 1e-6, "served plan {t}us exceeds T_min {t_min}us");
    // Training GPUs always stay FP32.
    for rank in cluster.training_ranks() {
        assert_eq!(
            plan.count_adjustable_at(&system.dag, rank, Precision::Fp32),
            system.dag.adjustable_ops().len(),
            "training rank {rank} not at full precision"
        );
    }
}

#[test]
fn served_plans_respect_pipeline_invariants_across_the_lifecycle() {
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::hybrid_small();

    let cold = engine.plan(&PlanRequest::new(1, spec(), cluster.clone())).unwrap();
    assert_eq!(cold.outcome, PlanOutcome::ColdPlanned);
    assert_plan_is_valid(&cold.plan, &spec(), &cluster, cold.t_min_us);

    let hit = engine.plan(&PlanRequest::new(2, spec(), cluster.clone())).unwrap();
    assert_eq!(hit.outcome, PlanOutcome::CacheHit);
    assert_eq!(hit.plan_json(), cold.plan_json());

    // Degrade an inference device and warm re-plan.
    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest::new(
        3,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.3, compute_fraction: 0.8 },
    );
    let outcome = engine.apply_delta(&delta).unwrap();
    assert_eq!(outcome.replanned.len(), 1);
    let warm = &outcome.replanned[0];
    let degraded = delta.delta.apply(&cluster).unwrap();
    assert_plan_is_valid(&warm.plan, &spec(), &degraded, warm.t_min_us);

    // The warm re-plan must fit the shrunk memory.
    let system = system_for(&spec(), &degraded);
    let shrunk_rank = degraded.inference_ranks()[0];
    assert!(
        system.memory_ok(shrunk_rank, warm.plan.device(shrunk_rank)),
        "warm re-plan does not fit the degraded device"
    );
}

#[test]
fn warm_and_cold_replans_agree_on_feasibility() {
    // After a memory squeeze, the warm re-plan and a from-scratch cold plan
    // must both be feasible; warm should not recover *fewer* operators merely
    // because it started from a cached assignment.
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::hybrid_small();
    engine.plan(&PlanRequest::new(1, spec(), cluster.clone())).unwrap();

    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest::new(
        2,
        cluster.clone(),
        ClusterDelta::Degraded { rank, memory_fraction: 0.5, compute_fraction: 1.0 },
    );
    let warm = engine.apply_delta(&delta).unwrap().replanned[0].clone();

    let degraded = delta.delta.apply(&cluster).unwrap();
    let cold_engine = PlanEngine::new();
    let cold = cold_engine.plan(&PlanRequest::new(3, spec(), degraded.clone())).unwrap();

    let system = system_for(&spec(), &degraded);
    let r = degraded.inference_ranks()[0];
    let warm_fp32 = warm.plan.count_adjustable_at(&system.dag, r, Precision::Fp32);
    let cold_fp32 = cold.plan.count_adjustable_at(&system.dag, r, Precision::Fp32);
    // Both paths run the same recovery loop to saturation; warm starts at or
    // above cold's starting point, so it cannot end lower.
    assert!(
        warm_fp32 >= cold_fp32,
        "warm recovered {warm_fp32} fp32 ops, cold recovered {cold_fp32}"
    );
}
