//! Cross-crate integration test for the replayer: prediction error against the
//! ground-truth executor stays below the paper's 5 % bound and beats the
//! no-cost-mapper (DPro-style) baseline on quantized configurations.

use qsync_cluster::topology::ClusterSpec;
use qsync_core::plan::PrecisionPlan;
use qsync_core::system::{QSyncConfig, QSyncSystem};
use qsync_lp_kernels::precision::Precision;
use qsync_graph::models::bert_base;
use qsync_graph::PrecisionDag;

fn bert_system() -> QSyncSystem {
    // Two T4s so the quantized devices gate the iteration time.
    QSyncSystem::new(bert_base(4, 128), ClusterSpec::cluster_a(0, 2), QSyncConfig::default())
}

#[test]
fn predictor_error_is_under_five_percent_for_all_table3_configs() {
    let sys = bert_system();
    let dag = &sys.dag;

    let mut configs: Vec<(&str, PrecisionDag)> = Vec::new();
    let mut half = PrecisionDag::full_precision(dag);
    let mut int8 = PrecisionDag::full_precision(dag);
    for n in dag.nodes() {
        if n.kind.family() == "linear" {
            let _ = half.set(dag, n.id, Precision::Fp16);
            let _ = int8.set(dag, n.id, Precision::Int8);
        }
    }
    configs.push(("half_linears", half));
    configs.push(("int_linears", int8));
    configs.push(("fp32", PrecisionDag::full_precision(dag)));

    for (name, pdag) in configs {
        let plan = PrecisionPlan::from_inference_pdag(name, dag, &sys.cluster, &pdag);
        let truth = sys.ground_truth_mean_us(&plan, 5);
        let predicted = sys.predict_iteration_us(&plan);
        let err = (predicted - truth).abs() / truth;
        assert!(err < 0.05, "{name}: predictor error {:.2}%", err * 100.0);
    }
}

#[test]
fn dropping_the_cost_mapper_degrades_prediction_for_quantized_plans() {
    let sys = bert_system();
    let plan = PrecisionPlan::uniform(&sys.dag, &sys.cluster, Precision::Int8);
    let truth = sys.ground_truth_mean_us(&plan, 5);
    let with_mapper = (sys.predict_iteration_us(&plan) - truth).abs() / truth;
    let without_mapper = (sys.dpro_iteration_us(&plan) - truth).abs() / truth;
    assert!(without_mapper > with_mapper);
    // The no-cost-mapper estimate misses casting work, so it must underestimate.
    assert!(sys.dpro_iteration_us(&plan) < truth);
}

#[test]
fn ground_truth_is_reproducible_per_iteration_seed() {
    let sys = bert_system();
    let plan = PrecisionPlan::uniform(&sys.dag, &sys.cluster, Precision::Fp16);
    assert_eq!(
        sys.ground_truth_iteration_us(&plan, 3),
        sys.ground_truth_iteration_us(&plan, 3)
    );
    assert_ne!(
        sys.ground_truth_iteration_us(&plan, 3),
        sys.ground_truth_iteration_us(&plan, 4)
    );
}
