//! Cross-crate integration test: the executable training engine feeds real per-layer
//! statistics into the indicator, and hybrid mixed-precision replicas remain bit-synced.

use std::collections::HashMap;

use qsync_core::indicator::{ModelStatistics, SensitivityIndicator, VarianceIndicator};
use qsync_lp_kernels::precision::Precision;
use qsync_graph::models::small_mlp;
use qsync_train::data::SyntheticClassification;
use qsync_train::dp::{DataParallelTrainer, MlpModel};
use qsync_train::layers::LayerObservation;
use qsync_train::optim::OptimizerConfig;

#[test]
fn real_observations_drive_the_indicator() {
    // Train a small 3-layer MLP for a few steps and collect per-layer observations.
    let dataset = SyntheticClassification::generate(256, 16, 4, 3);
    let mut model = MlpModel::new(&[16, 32, 32, 4], 5);
    for step in 0..10 {
        let (x, y) = dataset.batch(step * 16, 16);
        let _ = model.forward_loss(&x, &y);
        model.backward();
    }
    // Map observations onto the graph crate's MLP of the same depth (named fc1/fc2/fc3).
    let mut observations: HashMap<String, LayerObservation> = HashMap::new();
    for (i, layer) in model.linears.iter().enumerate() {
        observations.insert(format!("fc{}", i + 1), layer.observation.clone());
    }
    let dag = small_mlp(16, 16, 32, 4);
    let stats = ModelStatistics::from_observations(&dag, &observations);
    assert_eq!(stats.len(), 3, "every trained layer should match a graph node");

    let indicator = VarianceIndicator::new(stats);
    for id in dag.adjustable_ops() {
        let int8 = indicator.omega(&dag, id, Precision::Int8);
        let fp16 = indicator.omega(&dag, id, Precision::Fp16);
        // Layers with real statistics must rank INT8 as more damaging than FP16.
        if int8 > 0.0 {
            assert!(int8 > fp16);
        }
    }
}

#[test]
fn hybrid_precision_replicas_remain_synchronized_over_many_steps() {
    let dataset = SyntheticClassification::generate(512, 16, 4, 9);
    let (train, _test) = dataset.train_test_split(0.2);
    let plans = vec![
        vec![Precision::Fp32, Precision::Fp32],
        vec![Precision::Int8, Precision::Fp16],
        vec![Precision::Fp16, Precision::Fp16],
    ];
    let mut trainer = DataParallelTrainer::new(
        &[16, 32, 4],
        &train,
        &plans,
        OptimizerConfig::Sgd { lr: 0.1, momentum: 0.9, weight_decay: 0.0 },
        13,
    )
    .with_batch_size(16);
    for _ in 0..60 {
        let _ = trainer.step();
    }
    let f0 = trainer.weight_fingerprint(0);
    for w in 1..3 {
        let fw = trainer.weight_fingerprint(w);
        assert!((f0 - fw).abs() < 1e-6, "worker {w} diverged: {f0} vs {fw}");
    }
}
