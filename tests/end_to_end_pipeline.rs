//! Cross-crate integration test: the full QSync pipeline (profile -> indicator ->
//! allocate -> predict) on a hybrid cluster, exercising every crate together.

use qsync_cluster::topology::ClusterSpec;
use qsync_core::allocator::Allocator;
use qsync_core::baselines::{dynamic_batch_sizing, uniform_precision_plan};
use qsync_core::plan::PrecisionPlan;
use qsync_core::system::{QSyncConfig, QSyncSystem};
use qsync_lp_kernels::precision::Precision;
use qsync_graph::models::{small_mlp, vgg16bn};

fn small_system(cluster: ClusterSpec) -> QSyncSystem {
    QSyncSystem::new(small_mlp(64, 512, 1024, 16), cluster, QSyncConfig::default())
}

#[test]
fn qsync_reduces_variance_at_equal_throughput() {
    let sys = small_system(ClusterSpec::hybrid_small());
    let up = uniform_precision_plan(&sys);
    let (qsync, report) = Allocator::new(&sys).allocate(&sys.indicator());

    let up_time = sys.predict_iteration_us(&up);
    let qs_time = sys.predict_iteration_us(&qsync);
    // Throughput preserved (the allocator never drops below its T_min bound).
    assert!(qs_time <= report.t_min_us * 1.01);
    assert!(qs_time <= up_time * 1.01, "QSync {qs_time} vs UP {up_time}");
    // Accuracy-side: strictly less gradient-variance damage than uniform precision.
    assert!(sys.variance_ratio(&qsync) < sys.variance_ratio(&up));
}

#[test]
fn memory_constraint_is_honoured_on_cluster_b() {
    // A model large enough that full precision does not fit a 30%-shared T4 (but whose
    // most-compressed INT8 assignment does).
    let dag = vgg16bn(48, 224);
    let sys = QSyncSystem::new(dag, ClusterSpec::cluster_b(2, 2, 0.3), QSyncConfig::default());
    let t4 = sys.cluster.inference_ranks()[0];
    let cap = sys.cluster.devices[t4].available_memory_bytes();

    // Full precision must exceed the constrained memory (otherwise this test is vacuous).
    let fp32 = PrecisionPlan::oracle(&sys.dag, &sys.cluster);
    assert!(sys.memory_bytes(t4, fp32.device(t4)) > cap);

    let (plan, _) = Allocator::new(&sys).allocate(&sys.indicator());
    assert!(
        sys.memory_bytes(t4, plan.device(t4)) <= cap,
        "allocated plan exceeds the T4's available memory"
    );
    // Some operators must remain at low precision to fit.
    let fp32_ops = plan.count_adjustable_at(&sys.dag, t4, Precision::Fp32);
    assert!(fp32_ops < sys.dag.adjustable_ops().len());
}

#[test]
fn training_gpus_are_never_quantized_by_any_method() {
    let sys = small_system(ClusterSpec::hybrid_small());
    let plans = vec![
        uniform_precision_plan(&sys),
        Allocator::new(&sys).allocate(&sys.indicator()).0,
        PrecisionPlan::oracle(&sys.dag, &sys.cluster),
    ];
    for plan in plans {
        for rank in sys.cluster.training_ranks() {
            assert_eq!(
                plan.count_adjustable_at(&sys.dag, rank, Precision::Fp32),
                sys.dag.adjustable_ops().len(),
                "plan {} quantized a training GPU",
                plan.name
            );
        }
    }
}

#[test]
fn quantized_baselines_outperform_dynamic_batch_sizing_in_throughput() {
    let sys = small_system(ClusterSpec::hybrid_small());
    let dbs = dynamic_batch_sizing(&sys);
    let up = uniform_precision_plan(&sys);
    let (qsync, _) = Allocator::new(&sys).allocate(&sys.indicator());
    let up_tp = sys.predict(&up).iterations_per_second();
    let qs_tp = sys.predict(&qsync).iterations_per_second();
    assert!(up_tp > dbs.iterations_per_second);
    assert!(qs_tp > dbs.iterations_per_second);
}

#[test]
fn plans_survive_serialization_across_crates() {
    let sys = small_system(ClusterSpec::hybrid_small());
    let (plan, _) = Allocator::new(&sys).allocate(&sys.indicator());
    let json = plan.to_json();
    let restored = PrecisionPlan::from_json(&json).unwrap();
    assert_eq!(plan, restored);
    assert_eq!(
        sys.predict_iteration_us(&plan),
        sys.predict_iteration_us(&restored)
    );
}
