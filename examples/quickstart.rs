//! Quickstart: run the full QSync pipeline on a small hybrid cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 2xV100 + 2xT4 job training a small MLP, profiles it, lets the allocator pick
//! a quantization-minimized precision plan, and compares it against the uniform-precision
//! baseline.

use qsync_cluster::topology::ClusterSpec;
use qsync_core::allocator::Allocator;
use qsync_core::baselines::uniform_precision_plan;
use qsync_core::system::{QSyncConfig, QSyncSystem};
use qsync_graph::models::small_mlp;

fn main() {
    // 1) A model (per-device batch 1024, large enough that compute — not gradient
    //    synchronisation — dominates) and a hybrid cluster: 2 training + 2 inference GPUs.
    let model = small_mlp(1024, 1024, 2048, 64);
    let cluster = ClusterSpec::hybrid_small();
    println!("model: {} ({} operators, {:.1}M parameters)", model.name, model.len(), model.param_count() as f64 / 1e6);
    println!("cluster: {}\n", cluster.name);

    // 2) Assemble the system: profiling, casting models, indicator statistics.
    let system = QSyncSystem::new(model, cluster, QSyncConfig::default());

    // 3) Baseline: uniform precision on the inference GPUs.
    let up = uniform_precision_plan(&system);
    let up_sim = system.predict(&up);

    // 4) QSync: quantization-minimized allocation.
    let (plan, report) = Allocator::new(&system).allocate(&system.indicator());
    let qs_sim = system.predict(&plan);

    let t4 = system.cluster.inference_ranks()[0];
    println!("uniform precision : {}", up.summary(&system.dag, t4));
    println!("  predicted iteration: {:.2} ms ({:.3} it/s), T4 waiting {:.2} ms", up_sim.iteration_us / 1e3, up_sim.iterations_per_second(), up_sim.waiting_us(t4) / 1e3);
    println!("qsync             : {}", plan.summary(&system.dag, t4));
    println!("  predicted iteration: {:.2} ms ({:.3} it/s), T4 waiting {:.2} ms", qs_sim.iteration_us / 1e3, qs_sim.iterations_per_second(), qs_sim.waiting_us(t4) / 1e3);
    println!("  promotions accepted/rejected: {}/{}", report.promotions_accepted, report.promotions_rejected);
    println!("  gradient-variance ratio: UP {:.4} vs QSync {:.4} (lower is better)", system.variance_ratio(&up), system.variance_ratio(&plan));
    println!("  T4 memory: {:.2} GiB of {:.2} GiB available",
        system.memory_bytes(t4, plan.device(t4)) as f64 / (1u64 << 30) as f64,
        system.cluster.devices[t4].available_memory_bytes() as f64 / (1u64 << 30) as f64);

    // 5) The optimized plan can be exported and fed to the training backend.
    println!("\nplan JSON (first 200 chars): {}…", &plan.to_json()[..200]);
}
