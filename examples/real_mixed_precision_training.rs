//! Real (executable) hybrid mixed-precision data-parallel training on synthetic data.
//!
//! Two workers train the same MLP: worker 0 plays the training GPU (all FP32), worker 1
//! plays the inference GPU with a quantization-minimized plan (one INT8 layer, one FP16
//! layer, the rest FP32). Gradients are averaged with a real all-reduce each step. The
//! run demonstrates that the hybrid mixed-precision numerics (stochastic-rounding
//! quantizers, INT32 accumulation, FP16 grids) converge on par with full precision.
//!
//! ```text
//! cargo run --release --example real_mixed_precision_training
//! ```

use qsync_lp_kernels::precision::Precision;
use qsync_train::data::SyntheticClassification;
use qsync_train::dp::DataParallelTrainer;
use qsync_train::optim::OptimizerConfig;

fn main() {
    let dataset = SyntheticClassification::generate(2048, 32, 8, 7);
    let (train, test) = dataset.train_test_split(0.25);
    let dims = [32usize, 64, 64, 8];
    let sgd = OptimizerConfig::Sgd { lr: 0.1, momentum: 0.9, weight_decay: 0.0 };

    let run = |name: &str, inference_plan: Vec<Precision>| {
        let plans = vec![vec![Precision::Fp32; 3], inference_plan];
        let mut trainer =
            DataParallelTrainer::new(&dims, &train, &plans, sgd.clone(), 11).with_batch_size(32);
        let report = trainer.train(250, &test);
        println!(
            "{name:<28} final accuracy {:.1}%   first-loss {:.3} -> last-loss {:.3}",
            report.final_accuracy * 100.0,
            report.losses.first().unwrap(),
            report.losses.last().unwrap()
        );
        report.final_accuracy
    };

    println!("2-worker synchronous data-parallel training (synthetic 8-class task)\n");
    let fp32 = run("all-FP32 (oracle)", vec![Precision::Fp32; 3]);
    let qsync = run("QSync-style mixed plan", vec![Precision::Int8, Precision::Fp16, Precision::Fp32]);
    let uniform = run("uniform INT8 (UP)", vec![Precision::Int8; 3]);

    println!("\nquantization-minimized plan is within {:.1} points of FP32,", (fp32 - qsync).abs() * 100.0);
    println!("while uniform INT8 gives away {:.1} points.", (fp32 - uniform).abs() * 100.0);
}
