//! Quickstart for the plan-serving subsystem and its typed client.
//!
//! ```text
//! cargo run --release --example plan_server
//! ```
//!
//! Spins up a real TCP plan server (the epoll reactor, an ephemeral port)
//! and walks the serving lifecycle **through `qsync-client`**, exactly as a
//! remote consumer would: version handshake → cold plan → cache hit →
//! subscribing a watcher → a cluster elasticity event observed as an
//! invalidate/re-plan event stream → warm re-planned cache state. The same
//! protocol over a long-lived daemon:
//!
//! ```text
//! cargo run --release --bin qsync-serve -- serve --workers 8 --tcp 127.0.0.1:7878
//! cargo run --release --bin qsync-serve -- plan --model vgg16bn:2,32 --cluster a:2,2
//! ```
//!
//! See `docs/PROTOCOL.md` for the wire format (envelope, error codes,
//! events) and compatibility policy.

use std::net::TcpListener;

use qsync_client::{Client, MuxClient};
use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{
    ClusterDelta, DeltaRequest, ModelSpec, PlanServer, ServerEvent, ShutdownSignal,
};

fn main() {
    // A live server on an ephemeral port: 4 planner workers, one shared
    // scheduler/cache across every connection.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = ShutdownSignal::new();
    let server_thread = {
        let signal = shutdown.clone();
        std::thread::spawn(move || PlanServer::new(4).serve_listener(listener, signal))
    };

    let cluster = ClusterSpec::cluster_a(2, 2);
    let model = ModelSpec::Vgg16Bn { batch: 2, image: 32 };

    // 0. Connect: the client handshakes protocol versions with `Hello`.
    let mut client = Client::connect(addr).expect("connect");
    let (min_v, max_v) = client.server_versions();
    println!("[hello] {} speaks protocol v{min_v}..=v{max_v}", client.server_ident());

    // 1. Cold plan: profile the cluster, search precisions, cache the result.
    let request = qsync_serve::PlanRequest::new(0, model.clone(), cluster.clone());
    let cold = client.plan(request.clone()).expect("valid request");
    println!(
        "[cold]  outcome={:?}  predicted={:.0}us  promotions={}  elapsed={}us\n        key={}",
        cold.outcome, cold.predicted_iteration_us, cold.promotions_accepted, cold.elapsed_us, cold.key
    );

    // 2. The same request again: a cache hit, byte-identical plan.
    let hit = client.plan(request.clone()).expect("valid request");
    println!(
        "[hit]   outcome={:?}  byte_identical={}  elapsed={}us",
        hit.outcome,
        hit.plan_json() == cold.plan_json(),
        hit.elapsed_us
    );

    // 3. A second consumer — a multiplexing watcher — subscribes to the
    //    server's event stream.
    let watcher = MuxClient::connect(addr).expect("watcher connects");
    let events = watcher.subscribe().expect("subscribe");

    // 4. Elasticity: a co-located tenant claims most of one inference GPU.
    //    The watcher sees the invalidation and the warm re-plan as events,
    //    without polling.
    let rank = cluster.inference_ranks()[0];
    let outcome = client
        .delta(DeltaRequest::new(
            0,
            cluster.clone(),
            ClusterDelta::Degraded { rank, memory_fraction: 0.4, compute_fraction: 0.9 },
        ))
        .expect("delta applies");
    println!(
        "[delta] invalidated={}  replanned={}  {} -> {}",
        outcome.invalidated,
        outcome.replanned.len(),
        &outcome.old_cluster_fingerprint[..8],
        &outcome.new_cluster_fingerprint[..8],
    );
    let warm = &outcome.replanned[0];
    println!(
        "[warm]  outcome={:?}  predicted={:.0}us  demotions={}  promotions={}  elapsed={}us",
        warm.outcome,
        warm.predicted_iteration_us,
        warm.warm_demotions,
        warm.promotions_accepted,
        warm.elapsed_us
    );
    while let Some(item) = events.next_timeout(std::time::Duration::from_secs(5)) {
        let qsync_client::EventItem::Event { seq, event } = item else {
            continue; // a gap marker: this demo has no slow consumer
        };
        match event {
            ServerEvent::CacheInvalidated { keys, .. } => {
                println!("[event {seq}] cache invalidated: {} key(s)", keys.len());
            }
            ServerEvent::Replanned { key, outcome, .. } => {
                println!("[event {seq}] re-planned {}… ({outcome:?})", &key[..8]);
            }
            ServerEvent::DeltaApplied { invalidated, replanned, .. } => {
                println!("[event {seq}] delta applied: {invalidated} invalidated, {replanned} re-planned");
                break; // the wave is complete
            }
            ServerEvent::PlanReady { key, outcome, .. } => {
                println!("[event {seq}] plan ready {}… ({outcome:?})", &key[..8]);
            }
        }
    }

    // 5. Requests against the new shape are cache hits from here on.
    let new_cluster = ClusterDelta::Degraded { rank, memory_fraction: 0.4, compute_fraction: 0.9 }
        .apply(&cluster)
        .expect("delta applies");
    let after = client
        .plan(qsync_serve::PlanRequest::new(0, model, new_cluster))
        .expect("valid request");
    println!("[after] outcome={:?}  elapsed={}us", after.outcome, after.elapsed_us);

    let stats = client.stats().expect("stats");
    println!(
        "[cache] entries={}  hits={}  misses={}  invalidated={}",
        stats.cache.entries, stats.cache.hits, stats.cache.misses, stats.cache.invalidated
    );

    drop(client);
    drop(watcher);
    shutdown.shutdown();
    server_thread.join().expect("server thread").expect("server ran");
}
