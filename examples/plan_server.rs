//! Quickstart for the `qsync-serve` plan-serving subsystem.
//!
//! ```text
//! cargo run --release --example plan_server
//! ```
//!
//! Walks the full serving lifecycle in-process: cold plan → cache hit →
//! cluster elasticity event → warm re-plan, printing what a client of the
//! `qsync-serve` binary would observe. The same flow over the wire:
//!
//! ```text
//! cargo run --release --bin qsync-serve -- plan --model vgg16bn:2,32 --cluster a:2,2
//! cargo run --release --bin qsync-serve -- serve --workers 8   # JSON lines on stdin
//! ```

use qsync_cluster::topology::ClusterSpec;
use qsync_serve::{ClusterDelta, DeltaRequest, ModelSpec, PlanEngine, PlanRequest};

fn main() {
    let engine = PlanEngine::new();
    let cluster = ClusterSpec::cluster_a(2, 2);
    let model = ModelSpec::Vgg16Bn { batch: 2, image: 32 };

    // 1. Cold plan: profile the cluster, search precisions, cache the result.
    let request = PlanRequest::new(1, model.clone(), cluster.clone());
    let cold = engine.plan(&request).expect("valid request");
    println!(
        "[cold]  outcome={:?}  predicted={:.0}us  promotions={}  elapsed={}us\n        key={}",
        cold.outcome, cold.predicted_iteration_us, cold.promotions_accepted, cold.elapsed_us, cold.key
    );

    // 2. The same request again: a cache hit, byte-identical plan.
    let hit = engine.plan(&PlanRequest::new(2, model.clone(), cluster.clone())).expect("valid request");
    println!(
        "[hit]   outcome={:?}  byte_identical={}  elapsed={}us",
        hit.outcome,
        hit.plan_json() == cold.plan_json(),
        hit.elapsed_us
    );

    // 3. Elasticity: a co-located tenant claims most of one inference GPU.
    let rank = cluster.inference_ranks()[0];
    let delta = DeltaRequest {
        id: 3,
        cluster: cluster.clone(),
        delta: ClusterDelta::Degraded { rank, memory_fraction: 0.4, compute_fraction: 0.9 },
    };
    let outcome = engine.apply_delta(&delta).expect("delta applies");
    println!(
        "[delta] invalidated={}  replanned={}  {} -> {}",
        outcome.invalidated,
        outcome.replanned.len(),
        &outcome.old_cluster_fingerprint[..8],
        &outcome.new_cluster_fingerprint[..8],
    );
    let warm = &outcome.replanned[0];
    println!(
        "[warm]  outcome={:?}  predicted={:.0}us  demotions={}  promotions={}  elapsed={}us",
        warm.outcome,
        warm.predicted_iteration_us,
        warm.warm_demotions,
        warm.promotions_accepted,
        warm.elapsed_us
    );

    // 4. Requests against the new shape are cache hits from here on.
    let new_cluster = delta.delta.apply(&cluster).expect("delta applies");
    let after = engine.plan(&PlanRequest::new(4, model, new_cluster)).expect("valid request");
    println!("[after] outcome={:?}  elapsed={}us", after.outcome, after.elapsed_us);

    let stats = engine.cache().stats();
    println!(
        "[cache] entries={}  hits={}  misses={}  invalidated={}",
        stats.entries, stats.hits, stats.misses, stats.invalidated
    );
}
