//! Fine-tuning BERT on the memory-constrained ClusterB: shows how the allocator reacts
//! when only 30 % of the T4 memory is loaned to the training job (partial sharing).
//!
//! ```text
//! cargo run --release --example memory_constrained_bert
//! ```

use qsync_bench::experiments::setup;
use qsync_core::allocator::Allocator;
use qsync_core::baselines::uniform_precision_plan;
use qsync_lp_kernels::precision::Precision;

fn main() {
    // BERT's footprint (~3.3 GiB) still fits the paper's 30% slice of a T4, so to surface
    // the memory-pressure behaviour this example also shows an 18% slice (heavier MPS
    // sharing), where full FP16 no longer fits and INT8 operators become mandatory.
    let constrained = qsync_cluster::topology::ClusterSpec::cluster_b(setup::N_V100, setup::N_T4, 0.18);
    for (label, cluster) in [
        ("ClusterA (full T4 memory)", setup::cluster_a()),
        ("heavily shared T4s (18% memory)", constrained),
    ] {
        let system = setup::system("bert", cluster, 2024);
        let t4 = system.cluster.inference_ranks()[0];
        let cap_gib = system.cluster.devices[t4].available_memory_bytes() as f64 / (1u64 << 30) as f64;

        let up = uniform_precision_plan(&system);
        let (plan, _) = Allocator::new(&system).allocate(&system.indicator());
        let mem = |p: &qsync_core::plan::PrecisionPlan| {
            system.memory_bytes(t4, p.device(t4)) as f64 / (1u64 << 30) as f64
        };

        println!("== {label} — T4 has {cap_gib:.1} GiB available ==");
        println!(
            "  UP    : {:<40} memory {:.1} GiB, throughput {:.3} it/s",
            up.summary(&system.dag, t4),
            mem(&up),
            system.predict(&up).iterations_per_second()
        );
        println!(
            "  QSync : {:<40} memory {:.1} GiB, throughput {:.3} it/s",
            plan.summary(&system.dag, t4),
            mem(&plan),
            system.predict(&plan).iterations_per_second()
        );
        let int8 = plan.count_adjustable_at(&system.dag, t4, Precision::Int8);
        let fp32 = plan.count_adjustable_at(&system.dag, t4, Precision::Fp32);
        println!(
            "  QSync keeps {int8} operators at INT8 and recovers {fp32} to FP32; accuracy estimate {:.2}%\n",
            system.accuracy(&plan, 0).unwrap().mean
        );
    }
}
