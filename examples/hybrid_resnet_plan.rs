//! From-scratch ResNet-50 on the paper's ClusterA: ORACLE / DBS / UP / QSync side by side
//! (a single row of Table IV), plus the precision plan QSync chose.
//!
//! ```text
//! cargo run --release --example hybrid_resnet_plan
//! ```

use qsync_bench::experiments::setup;
use qsync_core::allocator::Allocator;
use qsync_core::baselines::{dbs_accuracy, dynamic_batch_sizing, oracle_accuracy, uniform_precision_plan};
use qsync_lp_kernels::precision::Precision;

fn main() {
    let system = setup::system("resnet50", setup::cluster_a(), 2024);
    println!("ResNet-50, local batch {}, {}", system.dag.batch_size, system.cluster.name);

    let oracle = oracle_accuracy(&system, 0).unwrap();
    println!("\nORACLE : accuracy {:.2} ± {:.2}%   throughput †", oracle.mean, oracle.std);

    let dbs = dynamic_batch_sizing(&system);
    let dbs_acc = dbs_accuracy(&system, 0).unwrap();
    println!(
        "DBS    : accuracy {:.2} ± {:.2}%   throughput {:.3} it/s   batch split V100={} T4={}",
        dbs_acc.mean,
        dbs_acc.std,
        dbs.iterations_per_second,
        dbs.batch_allocation[system.cluster.training_ranks()[0]],
        dbs.batch_allocation[system.cluster.inference_ranks()[0]],
    );

    let up = uniform_precision_plan(&system);
    let up_acc = system.accuracy(&up, 1).unwrap();
    println!(
        "UP     : accuracy {:.2} ± {:.2}%   throughput {:.3} it/s   ({})",
        up_acc.mean,
        up_acc.std,
        system.predict(&up).iterations_per_second(),
        up.summary(&system.dag, system.cluster.inference_ranks()[0]),
    );

    let (plan, _) = Allocator::new(&system).allocate(&system.indicator());
    let qs_acc = system.accuracy(&plan, 2).unwrap();
    println!(
        "QSync  : accuracy {:.2} ± {:.2}%   throughput {:.3} it/s   ({})",
        qs_acc.mean,
        qs_acc.std,
        system.predict(&plan).iterations_per_second(),
        plan.summary(&system.dag, system.cluster.inference_ranks()[0]),
    );

    // Which convolutions did QSync keep at low precision?
    let t4 = system.cluster.inference_ranks()[0];
    let pdag = plan.device(t4);
    let low: Vec<&str> = system
        .dag
        .nodes()
        .iter()
        .filter(|n| {
            n.kind.is_compute_intensive() && pdag.get(n.id) != Precision::Fp32
        })
        .map(|n| n.name.as_str())
        .take(12)
        .collect();
    println!("\nfirst low-precision operators kept on the T4s: {low:?}");
}
