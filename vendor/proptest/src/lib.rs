//! Offline stand-in for `proptest`.
//!
//! Supports the API surface used by this workspace's property tests: the
//! [`proptest!`] macro (including `#![proptest_config(...)]`), range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//! `any::<T>()`, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from crates.io proptest: cases are generated from a
//! deterministic per-test RNG (seeded from the test name), failures panic
//! immediately with the standard assert message, and there is **no shrinking**
//! — the failing case prints as-is. That trades minimal counter-examples for
//! zero dependencies.

/// Deterministic test RNG (xoshiro256++), seeded per test function.
pub mod test_runner {
    /// A small deterministic RNG for strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary 64-bit value via SplitMix64.
        pub fn deterministic(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(hi > lo, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(hi >= lo, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start;
                    let hi = self.end;
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<bool>()` and friends.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Self::Strategy {
            Any::default()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Self::Strategy { Any::default() }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// `prop::...` namespace mirroring crates.io proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Inclusive-exclusive bounds on a generated collection's size.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// Strategy generating `Vec`s of an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                assert!(self.size.hi > self.size.lo, "empty size range");
                let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty set");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len())].clone()
            }
        }
    }
}

/// Per-invocation configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Bind `name in strategy` argument lists inside [`proptest!`] (internal).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// The property-test macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..(__cfg.cases as u64) {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $crate::__proptest_bind!(__rng, $($args)*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0, z in 0u64..1) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert_eq!(z, 0);
        }

        /// Vec strategies hit the requested length window, and `mut` bindings work.
        #[test]
        fn vec_lengths_in_window(mut data in prop::collection::vec(0usize..5, 2..6), exact in prop::collection::vec(any::<bool>(), 4)) {
            prop_assert!(data.len() >= 2 && data.len() < 6);
            prop_assert_eq!(exact.len(), 4);
            data.push(0);
            prop_assert!(data.len() >= 3);
        }

        /// Tuples + prop_map + select compose.
        #[test]
        fn composition_works(pair in (1usize..4, 10usize..14).prop_map(|(a, b)| a + b), pick in prop::sample::select(vec![2, 4, 6])) {
            prop_assert!((11..18).contains(&pair));
            prop_assert_eq!(pick % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_processes() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic(9);
        let mut b = crate::test_runner::TestRng::deterministic(9);
        let s = 0usize..1000;
        let xs: Vec<usize> = (0..10).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<usize> = (0..10).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
