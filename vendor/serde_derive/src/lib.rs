//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the item definition is parsed directly from the
//! `proc_macro::TokenStream`. Supported shapes — which cover every derive site
//! in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, like serde),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Of serde's field attributes, only `#[serde(default)]` is supported: a
//! missing (or `null`) field deserializes via `Default::default()`, matching
//! crates.io serde — this is what keeps newer clients compatible with reply
//! lines from older servers. Generics and every other `#[serde(...)]`
//! attribute are not supported and panic with a clear message at expansion
//! time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing or null value deserializes via
    /// `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Whether `attr` (the bracket group of a `#[...]` attribute) is a
/// `#[serde(...)]` attribute containing `default`. Any other `#[serde(...)]`
/// content panics: silently ignoring an attribute the caller wrote (rename,
/// skip, flatten, ...) would change wire behavior without warning.
fn serde_attr_is_default(attr: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            for t in args.stream() {
                match &t {
                    TokenTree::Ident(i) if i.to_string() == "default" => {}
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!(
                        "serde_derive (vendored): unsupported #[serde(...)] attribute content {other:?}; only `default` is implemented"
                    ),
                }
            }
            true
        }
        _ => false,
    }
}

/// Parse the fields of a named-field body `{ a: T, b: U, ... }`, honoring
/// `#[serde(default)]` on each field.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if serde_attr_is_default(g) {
                            default = true;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(Field { name: name.to_string(), default });
        i += 1;
        // Expect `:` then the type; skip tokens until a comma at angle-depth 0.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple body `(T, U, ...)`.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    // Trailing comma.
    if !saw_token_since_comma {
        count -= 1;
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Data) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported; write manual impls for `{name}`");
        }
    }
    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_enum_variants(g))
            }
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, data)
}

fn gen_serialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::String(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds =
                                fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}\n"
    )
}

/// The deserialization expression for one named field read from the object
/// value expression `src` (e.g. `__v` or `__payload`): default-marked fields
/// fall back to `Default::default()` when the key is missing or null.
fn named_field_init(type_name: &str, field: &Field, src: &str) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match {src}.get(\"{f}\") {{ ::std::option::Option::Some(__fv) if !::std::matches!(__fv, serde::Value::Null) => serde::Deserialize::from_value(__fv).map_err(|e| serde::Error::custom(::std::format!(\"{type_name}.{f}: {{e}}\")))?, _ => ::std::default::Default::default() }}"
        )
    } else {
        format!(
            "{f}: serde::Deserialize::from_value({src}.get(\"{f}\").unwrap_or(&serde::Value::Null)).map_err(|e| serde::Error::custom(::std::format!(\"{type_name}.{f}: {{e}}\")))?"
        )
    }
}

fn gen_deserialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| named_field_init(name, f, "__v")).collect();
            format!(
                "if __v.as_object().is_none() {{ return Err(serde::Error::custom(\"expected object for {name}\")); }}\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(__a.get({i}).unwrap_or(&serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\nOk({name}({}))",
                inits.join(", ")
            )
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(__a.get({i}).unwrap_or(&serde::Value::Null))?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __a = __payload.as_array().ok_or_else(|| serde::Error::custom(\"expected array payload for {name}::{vn}\"))?; Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let type_name = format!("{name}::{vn}");
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_init(&type_name, f, "__payload"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => Err(serde::Error::custom(::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }},\n\
                 serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __payload) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {data}\n\
                 __other => Err(serde::Error::custom(::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{ {body} }}\n}}\n"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    gen_serialize(&name, &data).parse().expect("serde_derive: generated Serialize impl did not parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    gen_deserialize(&name, &data)
        .parse()
        .expect("serde_derive: generated Deserialize impl did not parse")
}
