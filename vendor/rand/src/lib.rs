//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API this workspace uses: [`RngCore`],
//! [`Rng`], [`SeedableRng`] and the [`distributions`] module with `Standard`
//! and `Uniform`. The float conversions match rand 0.8 (`gen::<f32>()` uses 24
//! high bits of a `u32`, `gen::<f64>()` 53 high bits of a `u64`), and
//! `seed_from_u64` uses the same SplitMix64 expansion as `rand_core` 0.6, so
//! seeded sequences are reproducible across this workspace.

/// A low-level source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        use distributions::Distribution;
        let v: f64 = distributions::Standard.sample(self);
        v < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (matches `rand_core` 0.6).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len().min(4);
            chunk[..n].copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample in `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let lo_w = lo as $wide;
                let hi_w = hi as $wide;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "gen_range: empty range");
                (lo_w + (rng.next_u64() % span as u64) as $wide) as $t
            }
        }
    )*};
}
uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The `rand::distributions` module: `Distribution`, `Standard`, `Uniform`.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: full-range ints, unit-interval floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.lo, self.hi, false, rng)
        }
    }
}

/// Commonly-imported items.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Simple named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small xoshiro256++-style generator (not the crates.io StdRng algorithm,
    /// but a good deterministic default for this workspace).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_interval() {
        let d = Uniform::new(2.0f32, 4.0f32);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
    }
}
