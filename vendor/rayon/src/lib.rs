//! Offline stand-in for `rayon`: the parallel-iterator API surface this
//! workspace uses, executed on the **`qsync-pool` work-stealing pool**.
//!
//! The build environment has no crates.io access, so this facade keeps the
//! `par_iter()` / `par_chunks()` call sites compiling unchanged while giving
//! them real parallelism: every pipeline bottoms out in
//! [`qsync_pool::run_chunks`], which fans index-ordered chunks out across the
//! pool's workers. Swapping this stand-in for crates.io rayon remains a
//! manifest-only change (tracked in ROADMAP.md open items).
//!
//! ## The deterministic reduction contract
//!
//! Unlike crates.io rayon (whose reduction *tree shape* depends on runtime
//! splitting), this facade guarantees **byte-identical results at every pool
//! size, including 1**:
//!
//! * the chunk layout comes from [`qsync_pool::chunk_plan`], a function of
//!   the input length (and `with_min_len`) only — never of the thread count;
//! * every chunk is processed with the exact sequential `Iterator` code; and
//! * per-chunk partials are combined **in chunk order** on the caller:
//!   `sum`/`reduce` fold left-to-right, `collect` concatenates in order,
//!   `min`/`min_by` keep the first minimum, `max` keeps the last maximum —
//!   the same tie-breaks as `std::iter`.
//!
//! The brute-force allocator, the quant/gemm kernels and the differential
//! suite in `crates/qsync/tests/pool_differential.rs` all lean on this.

use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Producers: splittable work sources
// ---------------------------------------------------------------------------

/// A splittable, exactly-once-consumable source of items. `len()` is the
/// chunking key (an upper bound for `filter`), `split_at` cleaves the source
/// into an index-ordered pair, and `into_iter` drains a chunk with plain
/// sequential iterator code.
pub trait Producer: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator draining one chunk.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Number of items (an upper bound after `filter`).
    fn len(&self) -> usize;
    /// Whether the producer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Drain sequentially.
    fn into_iter(self) -> Self::IntoIter;
}

/// Shared-slice source (`.par_iter()`).
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(index);
        (SliceProducer { slice: head }, SliceProducer { slice: tail })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

/// Exclusive-slice source (`.par_iter_mut()`).
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: head }, SliceMutProducer { slice: tail })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

/// Shared chunked source (`.par_chunks(n)`); one item = one sub-slice.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at(mid);
        (ChunksProducer { slice: head, size: self.size }, ChunksProducer { slice: tail, size: self.size })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Exclusive chunked source (`.par_chunks_mut(n)`).
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer { slice: head, size: self.size },
            ChunksMutProducer { slice: tail, size: self.size },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Owned source over a `Vec` (used for `fold` partials).
pub struct VecProducer<T> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecProducer { items: tail })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// `map` adapter: the closure rides along in an `Arc` so chunk splits share it.
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, O> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> O + Send + Sync,
    O: Send,
{
    type Item = O;
    type IntoIter = MapIter<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (MapProducer { base: head, f: Arc::clone(&self.f) }, MapProducer { base: tail, f: self.f })
    }

    fn into_iter(self) -> Self::IntoIter {
        MapIter { inner: self.base.into_iter(), f: self.f }
    }
}

/// Sequential iterator for one `map` chunk.
pub struct MapIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, F, O> Iterator for MapIter<I, F>
where
    F: Fn(I::Item) -> O,
{
    type Item = O;

    fn next(&mut self) -> Option<O> {
        self.inner.next().map(|item| (self.f)(item))
    }
}

/// `zip` adapter: splits both sides at the same index, truncating to the
/// shorter input like `std::iter::zip`.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a_head, a_tail) = self.a.split_at(index);
        let (b_head, b_tail) = self.b.split_at(index);
        (ZipProducer { a: a_head, b: b_head }, ZipProducer { a: a_tail, b: b_tail })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

/// `enumerate` adapter: each split's right half carries the index offset, so
/// chunk-local enumeration lines up with the global item order.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let offset = self.offset;
        let (head, tail) = self.base.split_at(index);
        (
            EnumerateProducer { base: head, offset },
            EnumerateProducer { base: tail, offset: offset + index },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        EnumerateIter { inner: self.base.into_iter(), index: self.offset }
    }
}

/// Sequential iterator for one `enumerate` chunk.
pub struct EnumerateIter<I> {
    inner: I,
    index: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        Some((index, item))
    }
}

/// `filter` adapter. `len()` becomes an upper bound: chunk layout still
/// derives from the pre-filter length (deterministic), and each chunk
/// filters while draining.
pub struct FilterProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterIter<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            FilterProducer { base: head, f: Arc::clone(&self.f) },
            FilterProducer { base: tail, f: self.f },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        FilterIter { inner: self.base.into_iter(), f: self.f }
    }
}

/// Sequential iterator for one `filter` chunk.
pub struct FilterIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I: Iterator, F> Iterator for FilterIter<I, F>
where
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let item = self.inner.next()?;
            if (self.f)(&item) {
                return Some(item);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The chunked execution engine
// ---------------------------------------------------------------------------

/// Elementwise sources default to coarse chunks so small inputs stay on the
/// calling thread; block sources (`par_chunks*`, whose items are whole
/// sub-slices) use a floor of 1. Both are functions of the *source kind*,
/// never of the pool size, preserving determinism.
const ELEMENT_MIN_LEN: usize = 1024;

/// Split `producer` into the `chunk_plan` layout and run `work` over every
/// chunk on the current pool, returning the per-chunk results **in chunk
/// order**. This is the one bridge between the iterator world and
/// `qsync-pool`; all sinks funnel through it.
fn drive<P, R, W>(producer: P, min_len: usize, work: W) -> Vec<R>
where
    P: Producer,
    R: Send,
    W: Fn(P) -> R + Sync,
{
    let (chunk, n) = qsync_pool::chunk_plan(producer.len(), min_len);
    if n == 0 {
        return Vec::new();
    }
    let mut chunks = Vec::with_capacity(n);
    let mut rest = producer;
    while chunks.len() + 1 < n {
        let (head, tail) = rest.split_at(chunk);
        chunks.push(head);
        rest = tail;
    }
    chunks.push(rest);
    let slots: Vec<Mutex<Option<P>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    qsync_pool::run_chunks(n, |i| {
        let chunk = slots[i].lock().unwrap().take().expect("each chunk is claimed once");
        *out[i].lock().unwrap() = Some(work(chunk));
    });
    out.into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("each chunk ran to completion"))
        .collect()
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing adapter chain
// ---------------------------------------------------------------------------

/// A parallel iterator over a splittable [`Producer`], mirroring the rayon
/// adapter names used in this workspace.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    /// Map each element.
    pub fn map<F, O>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> O + Send + Sync,
        O: Send,
    {
        ParIter { producer: MapProducer { base: self.producer, f: Arc::new(f) }, min_len: self.min_len }
    }

    /// Zip with another parallel iterator (chunks split both sides at the
    /// same indices).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        ParIter {
            producer: ZipProducer { a: self.producer, b: other.producer },
            min_len: self.min_len.max(other.min_len),
        }
    }

    /// Enumerate elements in global item order.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter { producer: EnumerateProducer { base: self.producer, offset: 0 }, min_len: self.min_len }
    }

    /// Filter elements (chunk layout still follows the pre-filter length).
    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter { producer: FilterProducer { base: self.producer, f: Arc::new(f) }, min_len: self.min_len }
    }

    /// Consume with a side-effecting closure, one chunk per pool job.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Sum the elements: per-chunk sequential sums, partials added in chunk
    /// order — byte-identical at every pool size.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collect into a container, preserving item order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().count())
            .into_iter()
            .sum()
    }

    /// rayon-style reduce: each chunk folds from its own `identity()`, and
    /// the per-chunk partials fold left-to-right in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// rayon-style fold: one folded accumulator per chunk, yielded as a new
    /// parallel iterator in chunk order.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let partials =
            drive(self.producer, self.min_len, |chunk| chunk.into_iter().fold(identity(), &fold_op));
        // The partial list is one accumulator per chunk — already reduced;
        // drain it in a single chunk downstream.
        let min_len = partials.len().max(1);
        ParIter { producer: VecProducer { items: partials }, min_len }
    }

    /// Minimum element; ties keep the **first** occurrence, like `std`.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().min())
            .into_iter()
            .flatten()
            .reduce(|best, x| if x < best { x } else { best })
    }

    /// Minimum by a comparator; ties keep the **first** occurrence.
    pub fn min_by<F>(self, compare: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Send + Sync,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().min_by(&compare))
            .into_iter()
            .flatten()
            .reduce(|best, x| if compare(&x, &best) == std::cmp::Ordering::Less { x } else { best })
    }

    /// Maximum element; ties keep the **last** occurrence, like `std`.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        drive(self.producer, self.min_len, |chunk| chunk.into_iter().max())
            .into_iter()
            .flatten()
            .reduce(|best, x| if x >= best { x } else { best })
    }

    /// Floor on items per chunk (rayon's work-splitting hint). Part of the
    /// chunk layout, so it must be the same at every pool size — callers
    /// derive it from the input, never from thread counts.
    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = len.max(1);
        self
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `.par_iter()` on shared slices/vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Underlying producer type.
    type Producer: Producer<Item = Self::Item>;

    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Producer>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Producer> {
        ParIter { producer: SliceProducer { slice: self }, min_len: ELEMENT_MIN_LEN }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Producer> {
        ParIter { producer: SliceProducer { slice: self }, min_len: ELEMENT_MIN_LEN }
    }
}

/// `.par_iter_mut()` on exclusive slices/vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Underlying producer type.
    type Producer: Producer<Item = Self::Item>;

    /// A parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Producer>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Producer> {
        ParIter { producer: SliceMutProducer { slice: self }, min_len: ELEMENT_MIN_LEN }
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Producer> {
        ParIter { producer: SliceMutProducer { slice: self }, min_len: ELEMENT_MIN_LEN }
    }
}

/// `.par_chunks()` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Chunked parallel iteration; each item is a sub-slice, so the
    /// per-chunk floor is 1 (items are already coarse).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParIter { producer: ChunksProducer { slice: self, size: chunk_size }, min_len: 1 }
    }
}

/// `.par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Chunked parallel iteration over mutable sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParIter { producer: ChunksMutProducer { slice: self, size: chunk_size }, min_len: 1 }
    }
}

/// The rayon prelude: every trait needed to call the adapter methods.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_uses_identity() {
        let xs: Vec<f32> = vec![-3.0, 7.0, 2.0];
        let m = xs.par_iter().map(|v| v.abs()).reduce(|| 0.0f32, f32::max);
        assert_eq!(m, 7.0);
    }

    #[test]
    fn chunks_mut_visits_every_element() {
        let mut xs = vec![0u32; 10];
        xs.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(xs, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_pairs_elements() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let s: i32 = a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }

    #[test]
    fn large_map_collect_preserves_order_in_parallel() {
        // Big enough to split into many chunks and actually hit the pool.
        let xs: Vec<u64> = (0..100_000).collect();
        let squared: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(squared.len(), xs.len());
        for (i, &v) in squared.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn par_iter_mut_updates_every_element_once() {
        let mut xs: Vec<u64> = vec![1; 50_000];
        xs.par_iter_mut().for_each(|v| *v += 1);
        assert!(xs.iter().all(|&v| v == 2));
    }

    #[test]
    fn filter_count_and_collect_respect_order() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens: Vec<u32> = xs.par_iter().filter(|&&x| x % 2 == 0).map(|&x| x).collect();
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(xs.par_iter().filter(|&&x| x % 2 == 0).count(), 5_000);
    }

    #[test]
    fn min_keeps_first_and_max_keeps_last_like_std() {
        // Tie-carrying payloads distinguish first-vs-last semantics.
        let xs: Vec<(u32, usize)> = (0..5_000).map(|i| (i % 5, i as usize)).collect();
        let key_min = xs.par_iter().map(|&(k, _)| k).min();
        assert_eq!(key_min, xs.iter().map(|&(k, _)| k).min());
        let min_by = xs
            .par_iter()
            .min_by(|a, b| a.0.cmp(&b.0))
            .copied();
        assert_eq!(min_by, Some((0, 0)), "ties keep the first occurrence");
        // std max keeps the last maximal element; Ord on tuples breaks ties
        // by payload, so compare against the sequential result directly.
        assert_eq!(xs.par_iter().max(), xs.iter().max());
    }

    #[test]
    fn fold_then_sum_is_deterministic() {
        let xs: Vec<u64> = (0..50_000).collect();
        let total: u64 = xs.par_iter().fold(|| 0u64, |acc, &x| acc + x).sum();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn reductions_are_byte_identical_across_pool_sizes() {
        let xs: Vec<f32> = (0..65_536).map(|i| ((i * 2_654_435_761u64 as usize) as f32).sin()).collect();
        let run = || -> (u32, Vec<u32>) {
            let sum: f32 = xs.par_iter().map(|&v| v * 0.5).sum();
            let absmax = xs.par_iter().map(|v| v.abs()).reduce(|| 0.0f32, f32::max);
            (sum.to_bits(), vec![absmax.to_bits()])
        };
        let baseline = qsync_pool::Pool::with_threads(1).install(run);
        for threads in [2, 4, 8] {
            let pool = qsync_pool::Pool::with_threads(threads);
            assert_eq!(pool.install(run), baseline, "pool size {threads}");
        }
    }
}
