//! Offline stand-in for `rayon`: the parallel-iterator API surface this
//! workspace uses, executed **sequentially**.
//!
//! The build environment has no crates.io access, so this facade keeps the
//! `par_iter()` / `par_chunks()` call sites compiling unchanged. All adapters
//! run on the calling thread; the system's real concurrency lives in the
//! `qsync-serve` worker pool, which uses `std::thread` directly. Swapping this
//! stand-in for crates.io rayon is a manifest-only change (tracked in
//! ROADMAP.md open items).

/// A "parallel" iterator: a thin wrapper over a sequential iterator that
/// mirrors the rayon adapter names used in this workspace.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Map each element.
    pub fn map<F, O>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> O,
    {
        ParIter { inner: self.inner.map(f) }
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter { inner: self.inner.zip(other.inner) }
    }

    /// Enumerate elements.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { inner: self.inner.enumerate() }
    }

    /// Filter elements.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter { inner: self.inner.filter(f) }
    }

    /// Consume with a side-effecting closure.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    /// Sum the elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Collect into a container.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// rayon-style reduce: fold from an identity-producing closure.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// rayon-style fold; sequentially this is a single fold producing one item.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter { inner: std::iter::once(self.inner.fold(identity(), fold_op)) }
    }

    /// Minimum element.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }

    /// Maximum element.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    /// No-op in the sequential facade (rayon uses it for work-splitting hints).
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// `.par_iter()` on shared slices/vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// A "parallel" iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `.par_iter_mut()` on exclusive slices/vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// A "parallel" iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter_mut() }
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter_mut() }
    }
}

/// `.par_chunks()` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Chunked "parallel" iteration.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter { inner: self.chunks(chunk_size) }
    }
}

/// `.par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Chunked "parallel" iteration over mutable sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter { inner: self.chunks_mut(chunk_size) }
    }
}

/// The rayon prelude: every trait needed to call the adapter methods.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_uses_identity() {
        let xs: Vec<f32> = vec![-3.0, 7.0, 2.0];
        let m = xs.par_iter().map(|v| v.abs()).reduce(|| 0.0f32, f32::max);
        assert_eq!(m, 7.0);
    }

    #[test]
    fn chunks_mut_visits_every_element() {
        let mut xs = vec![0u32; 10];
        xs.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(xs, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_pairs_elements() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let s: i32 = a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }
}
