//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API used by this workspace's
//! benches (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`). Instead of criterion's statistical
//! analysis it runs a fixed warm-up followed by timed batches and reports
//! mean / min per-iteration wall-clock time on stdout. Benches therefore stay
//! runnable (`cargo bench`) and comparable run-to-run, without the plotting and
//! HTML-report machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (filled by `iter`).
    mean_ns: f64,
    /// Fastest observed iteration in nanoseconds.
    min_ns: f64,
    /// Iterations actually timed.
    iters: u64,
    /// Target number of timed iterations.
    target_iters: u64,
}

impl Bencher {
    /// Run the routine: a short warm-up, then `target_iters` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20ms of work or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000)
        {
            black_box(routine());
            warm_iters += 1;
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut done = 0u64;
        while done < self.target_iters {
            let start = Instant::now();
            black_box(routine());
            let el = start.elapsed();
            total += el;
            if el < min {
                min = el;
            }
            done += 1;
            // Cap total timed duration so heavyweight benches stay tractable.
            if total > Duration::from_secs(5) {
                break;
            }
        }
        self.iters = done;
        self.mean_ns = total.as_nanos() as f64 / done.max(1) as f64;
        self.min_ns = min.as_nanos() as f64;
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Shrink the measurement budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher =
            Bencher { mean_ns: 0.0, min_ns: 0.0, iters: 0, target_iters: self.sample_size };
        f(&mut bencher);
        let line = format!(
            "{}/{:<40} mean {:>12}   min {:>12}   ({} iters)",
            self.name,
            id,
            human(bencher.mean_ns),
            human(bencher.min_ns),
            bencher.iters
        );
        println!("{line}");
        self.criterion.results.push((format!("{}/{}", self.name, id), bencher.mean_ns));
    }

    /// Benchmark a routine.
    pub fn bench_function<ID: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        f: F,
    ) -> &mut Self {
        self.run(id.into().id, f);
        self
    }

    /// Benchmark a routine with a borrowed input.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into().id, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Collected `(id, mean_ns)` pairs, exposed for harness-side summaries.
    pub results: Vec<(String, f64)>,
}


impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Benchmark a routine outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup { criterion: self, name: "bench".into(), sample_size: 20 };
        group.bench_function(id, f);
        self
    }
}

/// Declare a group-running function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 >= 0.0);
    }

    #[test]
    fn benchmark_ids_format_with_parameters() {
        let id = BenchmarkId::new("allocate", "bert");
        assert_eq!(id.id, "allocate/bert");
    }
}
