//! Offline stand-in for `rand_chacha`: the ChaCha stream cipher used as a
//! deterministic, seedable RNG.
//!
//! Implements the real ChaCha block function (RFC 8439 quarter-round) with a
//! configurable round count, so `ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng`
//! are genuine ChaCha generators. Word-level output order follows the block
//! word order; exact bit-compatibility with crates.io `rand_chacha` output is
//! not guaranteed (the workspace only relies on determinism, not on matching
//! externally-generated streams).

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with `R` double-rounds times two (i.e. `ChaCha<4>` = 8 rounds).
#[derive(Debug, Clone)]
pub struct ChaCha<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaCha<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, init)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*init);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaCha<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        let mut rng = ChaCha { key, counter: 0, buffer: [0; 16], index: 16 };
        rng.refill();
        rng
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaCha<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// ChaCha with 8 rounds — the fast variant used throughout this workspace.
pub type ChaCha8Rng = ChaCha<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaCha<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaCha<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc8439_block_one() {
        // RFC 8439 section 2.3.2 test vector, adapted: key bytes 00..1f,
        // counter 1, nonce 0. Our nonce is fixed to 0 and the counter starts at
        // 0, so generate two blocks and check the second block's first word
        // against an independently computed reference for nonce=0.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut a = ChaCha20Rng::from_seed(seed);
        let mut b = ChaCha20Rng::from_seed(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_uniformly_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
