//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no crates.io mirror, so this
//! workspace vendors a minimal serde-compatible surface: a self-describing
//! [`Value`] data model, [`Serialize`] / [`Deserialize`] traits that convert to
//! and from it, and `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the sibling `serde_derive` proc-macro crate).
//!
//! Design notes, where this intentionally differs from crates.io serde:
//!
//! * Serialization is two-phase: every type first converts to [`Value`], and the
//!   `serde_json` stand-in renders that. This is slower than serde's visitor
//!   architecture but vastly simpler, and plan serialization is not a hot path.
//! * Object key order is **insertion order** (a `Vec` of pairs, not a map), so a
//!   derived struct always serializes its fields in declaration order. This makes
//!   serialized output deterministic, which the plan cache relies on for its
//!   byte-identical cache-hit guarantee.
//! * Maps with non-string keys serialize as arrays of `[key, value]` pairs
//!   (crates.io `serde_json` errors on them). Map entries from unordered maps are
//!   sorted by encoded key so output stays deterministic.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Deserialization / serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON-style number. Integers keep full 64-bit fidelity.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Numeric value as f64 (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Value as u64 when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) if v >= 0 => Some(v as u64),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Value as i64 when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            // Cross-representation comparison is numeric.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A self-describing value: the intermediate representation every `Serialize`
/// impl produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with **insertion-ordered** keys.
    Object(Vec<(String, Value)>),
}

/// Shared `Null` for out-of-bounds `Index` results, as in `serde_json`.
static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object's key/value pairs.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric value as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialize: convert to the self-describing [`Value`] model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialize: reconstruct from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U64(v as u64)) } else { Value::Number(Number::I64(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json serializes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only used for `&'static str` struct fields
    /// (e.g. device names); those are few and tiny.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Serialize map entries: objects when every key encodes to a string (ordinary
/// JSON), arrays of `[key, value]` pairs otherwise. Entries are sorted by the
/// encoded key so `HashMap` output is deterministic.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    already_sorted: bool,
) -> Value {
    let mut pairs: Vec<(Value, Value)> =
        entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    let all_string_keys = pairs.iter().all(|(k, _)| matches!(k, Value::String(_)));
    if !already_sorted {
        pairs.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
    }
    if all_string_keys {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::String(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(pairs.into_iter().map(|(k, v)| Value::Array(vec![k, v])).collect())
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let pair = item.as_array().ok_or_else(|| Error::custom("expected [key, value]"))?;
                Ok((
                    K::from_value(pair.first().unwrap_or(&Value::Null))?,
                    V::from_value(pair.get(1).unwrap_or(&Value::Null))?,
                ))
            })
            .collect(),
        _ => Err(Error::custom("expected map")),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

/// Compatibility alias module: `serde::de::Error` style paths.
pub mod de {
    pub use crate::{Deserialize, Error};
}

/// Compatibility alias module: `serde::ser` style paths.
pub mod ser {
    pub use crate::{Error, Serialize};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Number(Number::U64(3)));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Value::Object(vec![
            ("z".into(), Value::Bool(true)),
            ("a".into(), Value::Null),
        ]);
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn hashmap_with_tuple_keys_is_deterministic() {
        let mut m = HashMap::new();
        m.insert((2usize, 1u8), 1.0f64);
        m.insert((1usize, 9u8), 2.0f64);
        assert_eq!(m.to_value(), m.clone().to_value());
        let back = HashMap::<(usize, u8), f64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
