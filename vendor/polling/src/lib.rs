//! Offline stand-in for `polling`: a thin, level-triggered epoll wrapper.
//!
//! The build environment has no crates.io access, so like every other
//! `vendor/` crate this is a minimal hand-rolled implementation of the API
//! surface the workspace needs — here, readiness notification for the
//! `qsync-serve` reactor transport:
//!
//! * [`Poller::new`] — an epoll instance plus an `eventfd` **waker**, so
//!   other threads can interrupt a blocked [`Poller::wait`] with
//!   [`Poller::notify`] (reply bytes became available, shutdown requested).
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] — register a
//!   socket under a caller-chosen `key` with a read/write [`Interest`].
//! * [`Poller::wait`] — block until readiness [`Event`]s arrive; error/hangup
//!   conditions are folded into readability/writability so callers observe
//!   them as an EOF read or a failing write.
//!
//! Registration is **level-triggered** (no `EPOLLONESHOT`/`EPOLLET`): an event
//! repeats while the condition holds, so the reactor only registers write
//! interest while it actually has buffered bytes — that re-registration *is*
//! the backpressure mechanism.
//!
//! The libc symbols (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`,
//! …) are declared locally: every Rust `std` program on Linux already links
//! libc, so no external crate is needed. On non-Linux targets the crate
//! compiles but [`Poller::new`] returns [`std::io::ErrorKind::Unsupported`].

#![warn(missing_docs)]

/// What readiness a registration (or a delivered event) covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the source becomes readable (or hits EOF/error).
    pub readable: bool,
    /// Wake when the source becomes writable (or hits error).
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither: stay registered but deliver nothing (read-side backpressure).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is readable — or has hung up: a subsequent read reports EOF
    /// or the error, which is exactly how callers should discover it.
    pub readable: bool,
    /// The source is writable — or errored; the next write surfaces it.
    pub writable: bool,
}

/// The key reserved for the poller's internal waker; [`Poller::add`] rejects
/// it.
pub const WAKER_KEY: usize = usize::MAX;

pub use sys::Poller;

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, WAKER_KEY};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    use std::os::raw::{c_int, c_uint, c_void};

    // `struct epoll_event` is packed on x86; other Linux targets use the
    // natural C layout (this mirrors the cfg in the real libc crate).
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0x800;
    const EFD_CLOEXEC: c_int = 0x80000;

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn epoll_mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.readable {
            // RDHUP rides with read interest only: a registration that has
            // withdrawn read interest (backpressure) must not be woken —
            // level-triggered — for a peer half-close it isn't going to
            // consume yet.
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// A level-triggered epoll instance with a built-in eventfd waker.
    ///
    /// All methods take `&self`; the underlying syscalls are thread-safe, so
    /// one thread may block in [`wait`](Poller::wait) while others call
    /// [`notify`](Poller::notify) (the reactor's cross-thread wakeup).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wake_fd: RawFd,
    }

    impl Poller {
        /// A new poller with its waker already registered.
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wake_fd = match cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wake_fd };
            poller.ctl(EPOLL_CTL_ADD, wake_fd, WAKER_KEY, Interest::READ)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent { events: epoll_mask(interest), data: key as u64 };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
        }

        /// Register `source` under `key` with the given interest.
        pub fn add(&self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
            if key == WAKER_KEY {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "key reserved for the waker"));
            }
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), key, interest)
        }

        /// Change the interest of an already registered source.
        pub fn modify(&self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), key, interest)
        }

        /// Remove a source from the poller (do this before closing its fd).
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9 kernels happy.
            let mut dummy = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), &mut dummy) })
                .map(|_| ())
        }

        /// Block until events arrive (or `timeout` elapses, or a
        /// [`notify`](Poller::notify) lands), appending them to `events` and
        /// returning how many were added. Waker wakeups are drained internally
        /// and produce a `0`-event return rather than an [`Event`].
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 0 < t < 1 ms timeout still sleeps.
                Some(t) => t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as c_int,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 512];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut added = 0;
            for raw in &buf[..n] {
                let (mask, key) = (raw.events, raw.data as usize);
                if key == WAKER_KEY {
                    // Drain the eventfd counter so the next notify re-arms.
                    let mut counter = [0u8; 8];
                    unsafe { read(self.wake_fd, counter.as_mut_ptr() as *mut c_void, 8) };
                    continue;
                }
                events.push(Event {
                    key,
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
                added += 1;
            }
            Ok(added)
        }

        /// Wake a thread blocked in [`wait`](Poller::wait) from any thread.
        /// Idempotent until the wakeup is consumed.
        pub fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            let ret =
                unsafe { write(self.wake_fd, (&one as *const u64) as *const c_void, 8) };
            // EAGAIN means the counter is already at max — a wakeup is
            // pending, which is all notify promises.
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_fd);
                close(self.epfd);
            }
        }
    }

}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "polling: epoll backend is Linux-only"))
    }

    /// Stub poller for non-Linux targets; [`Poller::new`] always fails.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always returns [`io::ErrorKind::Unsupported`] on this target.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable: no `Poller` value exists on this target.
        pub fn add(&self, _: &impl AsRawFd, _: usize, _: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable: no `Poller` value exists on this target.
        pub fn modify(&self, _: &impl AsRawFd, _: usize, _: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable: no `Poller` value exists on this target.
        pub fn delete(&self, _: &impl AsRawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable: no `Poller` value exists on this target.
        pub fn wait(&self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }

        /// Unreachable: no `Poller` value exists on this target.
        pub fn notify(&self) -> io::Result<()> {
            unsupported()
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn readiness_round_trip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, 7, Interest::READ).unwrap();

        // Nothing to read yet: a short wait times out with no events.
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);

        // Bytes arrive -> readable event under our key.
        (&client).write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: the event repeats until the bytes are consumed.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));
        let mut buf = [0u8; 16];
        let read = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..read], b"ping");

        // Peer hangup surfaces as readable (EOF read).
        drop(client);
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));
        assert_eq!((&server).read(&mut buf).unwrap(), 0, "hangup reads as EOF");

        poller.delete(&server).unwrap();
    }

    #[test]
    fn interest_modification_gates_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // NONE interest: readable bytes deliver nothing (read backpressure).
        poller.add(&server, 1, Interest::NONE).unwrap();
        (&client).write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);

        // WRITE interest on an idle socket fires immediately (buffer empty).
        poller.modify(&server, 1, Interest::BOTH).unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable && e.writable));
        poller.delete(&server).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait_across_threads() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        // No timeout: only the notify can end this wait.
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 0, "waker wakeups carry no events");
        handle.join().unwrap();
        // Drained: the next short wait times out instead of spinning.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(5))).unwrap(), 0);
    }

}
