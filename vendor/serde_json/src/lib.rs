//! Offline stand-in for `serde_json`: JSON text <-> the vendored
//! [`serde::Value`] model.
//!
//! Output is deterministic: object keys keep insertion order (declaration order
//! for derived structs) and numbers render with Rust's shortest round-trip
//! float formatting. The plan cache relies on this determinism for its
//! byte-identical cache-hit guarantee.

pub use serde::{Number, Value};

/// JSON parse/convert error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value out of a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // Keep floats recognisable as floats (serde_json prints 1.0, not 1).
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (depth + 1)));
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * depth));
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (depth + 1)));
                }
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume until a quote or backslash.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("eof in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("eof in \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F64(text.parse::<f64>().map_err(|_| Error::new("invalid float"))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I64(i)
        } else {
            Number::F64(text.parse::<f64>().map_err(|_| Error::new("invalid number"))?)
        };
        Ok(Value::Number(number))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

/// Build a [`Value`] from a JSON-like literal. Object values and array elements
/// may be nested JSON literals or arbitrary expressions implementing
/// `serde::Serialize`. Implemented with the standard tt-muncher idiom.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Fresh object-entry accumulator for the [`json!`] expansion (the helper also
/// keeps clippy's `vec_init_then_push` from firing at every call site).
#[doc(hidden)]
pub fn __new_object() -> Vec<(String, Value)> {
    Vec::new()
}

/// Recursive worker behind [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- leaf literals -----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    // ----- arrays -----
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };

    // ----- objects -----
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::__new_object();
        $crate::json_internal!(@object __object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(__object)
    }};

    // ----- array muncher -----
    (@array [$($elems:expr,)*]) => { ::std::vec![$($elems,)*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object muncher: accumulate the key, then the value -----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((::std::string::String::from($($key)+), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((::std::string::String::from($($key)+), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- fall-through: any serializable expression -----
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({
            "name": "qsync",
            "n": 3,
            "neg": -7,
            "pi": 3.5,
            "flag": true,
            "items": [1, 2, 3],
            "nothing": null,
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["name"], "qsync");
        assert_eq!(back["items"].as_array().unwrap().len(), 3);
        assert_eq!(back["items"][1].as_u64(), Some(2));
        assert_eq!(back["nothing"], Value::Null);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&json!({ "x": 2.0f64 })).unwrap();
        assert_eq!(text, "{\"x\":2.0}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({ "s": "a\"b\\c\nd\te" });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = json!({ "b": 1, "a": [true, false], "c": { "z": 0, "y": 1 } });
        assert_eq!(to_string(&v).unwrap(), to_string(&v.clone()).unwrap());
        // Insertion order is preserved, not sorted.
        assert!(to_string(&v).unwrap().starts_with("{\"b\":"));
    }
}
