//! Workspace root crate for the QSync reproduction.
//!
//! This crate only exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. All functionality lives in the
//! member crates:
//!
//! * [`qsync_lp_kernels`] — low-precision kernels (the LP-PyTorch analogue)
//! * [`qsync_tensor`] — dense tensor substrate
//! * [`qsync_graph`] — operator DAGs and the model zoo
//! * [`qsync_cluster`] — hybrid-device cluster simulator and profiler
//! * [`qsync_train`] — executable mixed-precision training engine
//! * [`qsync_core`] — the QSync system itself (predictor, allocator, baselines)
//! * [`qsync_api`] — the versioned wire protocol (commands, envelopes, errors, events)
//! * [`qsync_serve`] — the plan-serving subsystem (plan cache, elastic re-planning)
//! * [`qsync_client`] — typed blocking + multiplexing protocol clients

pub use qsync_api as api;
pub use qsync_client as client;
pub use qsync_cluster as cluster;
pub use qsync_core as core;
pub use qsync_graph as graph;
pub use qsync_lp_kernels as lp_kernels;
pub use qsync_serve as serve;
pub use qsync_tensor as tensor;
pub use qsync_train as train;
